package compile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseDiagnostics covers the exact -gcflags='-m=1
// -d=ssa/check_bce' output format: package headers, gated and
// non-gated messages, malformed lines.
func TestParseDiagnostics(t *testing.T) {
	output := strings.Join([]string{
		"# spmv/internal/csr",
		"internal/csr/csr.go:99:18: Found IsInBounds",
		"internal/csr/csr.go:101:4: Found IsSliceInBounds",
		"internal/csr/csr.go:47:78: ~r0 escapes to heap",
		"internal/csr/csr.go:52:9: moved to heap: acc",
		"internal/csr/csr.go:30:6: can inline (*Matrix).Rows", // not gated
		"internal/csr/csr.go:83:25: y does not escape",        // not gated
		"internal/csr/csr.go:84:2: x does not escape to heap", // not gated (defensive)
		"not a diagnostic line",
		"bad:position:here: Found IsInBounds",
		"",
	}, "\n")
	diags := ParseDiagnostics(output)
	if len(diags) != 4 {
		t.Fatalf("parsed %d diagnostics, want 4: %+v", len(diags), diags)
	}
	want := []struct {
		line int
		cat  string
	}{
		{99, "IsInBounds"},
		{101, "IsSliceInBounds"},
		{47, "escapes to heap"},
		{52, "moved to heap"},
	}
	for i, w := range want {
		d := diags[i]
		if d.File != "internal/csr/csr.go" || d.Line != w.line || d.Category != w.cat {
			t.Errorf("diag %d = %+v, want line %d category %q", i, d, w.line, w.cat)
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := map[string]int{
		"a.go|SpMV|IsInBounds":  2,
		"a.go|SpMV|moved":       1, // will vanish: improvement
		"a.go|Build|IsInBounds": 1, // cold, will grow
	}
	diags := []Diag{
		{File: "a.go", Func: "SpMV", Category: "IsInBounds"},
		{File: "a.go", Func: "SpMV", Category: "IsInBounds"},
		{File: "a.go", Func: "SpMV", Category: "escapes to heap"}, // new hot regression
		{File: "a.go", Func: "Build", Category: "IsInBounds"},
		{File: "a.go", Func: "Build", Category: "IsInBounds"},
	}
	isHot := func(fn string) bool { return fn == "SpMV" }
	reg, imp := Compare(baseline, diags, isHot)
	if len(reg) != 2 {
		t.Fatalf("regressions = %+v, want 2", reg)
	}
	var hotCount int
	for _, d := range reg {
		if d.Hot {
			hotCount++
			if !strings.Contains(d.Key, "escapes to heap") {
				t.Errorf("hot regression on %q, want the new escape", d.Key)
			}
		}
	}
	if hotCount != 1 {
		t.Fatalf("hot regressions = %d, want 1 (Build growth is cold)", hotCount)
	}
	if len(imp) != 1 || !strings.Contains(imp[0].Key, "moved") {
		t.Fatalf("improvements = %+v, want the vanished moved-to-heap entry", imp)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	diags := []Diag{
		{File: "internal/csr/csr.go", Func: "(*Matrix).SpMV", Category: "IsInBounds"},
		{File: "internal/csr/csr.go", Func: "(*Matrix).SpMV", Category: "IsInBounds"},
		{File: "internal/csr/csr.go", Func: "spmvRange", Category: "escapes to heap"},
	}
	if err := WriteBaseline(dir, "internal/csr", diags); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(dir, "internal/csr")
	if err != nil {
		t.Fatal(err)
	}
	want := Counts(diags)
	if len(got) != len(want) {
		t.Fatalf("round trip = %v, want %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("key %q = %d, want %d", k, got[k], n)
		}
	}
	// Missing baseline file = empty baseline.
	empty, err := LoadBaseline(dir, "internal/nonexistent")
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing baseline: %v, %v", empty, err)
	}
}

func TestLoadBaselineRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := BaselineFile(dir, "internal/x")
	if err := os.WriteFile(path, []byte("not\ttab\tseparated\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(dir, "internal/x"); err == nil {
		t.Fatal("LoadBaseline accepted a malformed line")
	}
	if err := os.WriteFile(path, []byte("zero\ta\tb\tc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(dir, "internal/x"); err == nil {
		t.Fatal("LoadBaseline accepted a bad count")
	}
}

// sandboxKernel is a minimal module whose SpMV kernel is clean: local
// accumulation over equal-length slices the compiler can bounds-check
// away after the explicit re-slice.
const sandboxCleanKernel = `package kernel

// SpMV is a hot function by the gate's naming convention.
func SpMV(y, x []float64, ind []int32) {
	x = x[:len(ind)]
	for k, j := range ind {
		y[j] += x[k]
	}
}
`

// sandboxDirtyKernel adds what the gate must catch: a heap allocation
// (escaping slice) inside the kernel.
const sandboxDirtyKernel = `package kernel

var sink []float64

// SpMV now allocates per call and leaks it: the gate must flag the
// escape as a hot regression.
func SpMV(y, x []float64, ind []int32) {
	tmp := make([]float64, len(y))
	x = x[:len(ind)]
	for k, j := range ind {
		tmp[j] += x[k]
	}
	copy(y, tmp)
	sink = tmp
}
`

// TestGateCatchesNewAllocation is the acceptance test for the compile
// gate: baseline a clean kernel, introduce a heap allocation, and
// expect a hot regression.
func TestGateCatchesNewAllocation(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	root := t.TempDir()
	pkgDir := filepath.Join(root, "kernel")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module sandbox\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	write := func(src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(pkgDir, "kernel.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg := &Config{Root: root, Packages: []string{"kernel"}}
	isHot := func(fn string) bool { return fn == "SpMV" }

	write(sandboxCleanKernel)
	before, err := cfg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	baseDir := filepath.Join(root, "baseline")
	if err := WriteBaseline(baseDir, "kernel", before["kernel"]); err != nil {
		t.Fatal(err)
	}

	write(sandboxDirtyKernel)
	after, err := cfg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(baseDir, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := Compare(base, after["kernel"], isHot)
	var hot []Delta
	for _, d := range reg {
		if d.Hot {
			hot = append(hot, d)
		}
	}
	if len(hot) == 0 {
		t.Fatalf("gate missed the planted allocation; regressions = %+v, diags = %+v", reg, after["kernel"])
	}
	found := false
	for _, d := range hot {
		if strings.Contains(d.Key, "heap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot regressions %+v do not include a heap diagnostic", hot)
	}
}

func TestFilterAlloc(t *testing.T) {
	isReq := func(fn string) bool { return strings.HasPrefix(fn, "handle") }
	diags := []Diag{
		{File: "s.go", Func: "handleMultiply", Category: "escapes to heap"}, // kept
		{File: "s.go", Func: "handleMultiply", Category: "IsInBounds"},      // not an allocation
		{File: "s.go", Func: "newServer", Category: "escapes to heap"},      // not request path
		{File: "s.go", Func: "handleUpload", Category: "moved to heap"},     // kept
		{File: "s.go", Func: "", Category: "escapes to heap"},               // package scope: kept
	}
	got := FilterAlloc(diags, isReq)
	if len(got) != 3 {
		t.Fatalf("FilterAlloc kept %d diagnostics, want 3: %+v", len(got), got)
	}
	for _, d := range got {
		if !IsAllocCategory(d.Category) {
			t.Errorf("non-allocation category %q survived the filter", d.Category)
		}
		if d.Func == "newServer" {
			t.Errorf("off-request-path function survived the filter")
		}
	}
}

// sandboxCleanHandler is a request-path function (by the "handle"
// naming convention) with no visible heap allocations.
const sandboxCleanHandler = `package server

// handleSum walks its input without allocating.
func handleSum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}
`

// sandboxDirtyHandler adds a per-request allocation the alloc gate
// must flag.
const sandboxDirtyHandler = `package server

var sink []float64

// handleSum now copies its input to a leaked scratch slice.
func handleSum(xs []float64) float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sink = tmp
	var s float64
	for _, v := range tmp {
		s += v
	}
	return s
}
`

// TestAllocGateCatchesHandlerAllocation is the acceptance test for the
// allocation gate: baseline a clean handler, introduce a per-request
// heap allocation, and expect a (fatal) regression even though the
// function is not a hot kernel.
func TestAllocGateCatchesHandlerAllocation(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	root := t.TempDir()
	pkgDir := filepath.Join(root, "server")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module sandbox\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	write := func(src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(pkgDir, "server.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg := &Config{Root: root, Packages: []string{"server"}}
	isReq := func(fn string) bool { return strings.HasPrefix(fn, "handle") }

	write(sandboxCleanHandler)
	before, err := cfg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	baseDir := filepath.Join(root, "baseline")
	key := AllocBaselineKey("server")
	if err := WriteBaseline(baseDir, key, FilterAlloc(before["server"], isReq)); err != nil {
		t.Fatal(err)
	}

	write(sandboxDirtyHandler)
	after, err := cfg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(baseDir, key)
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := Compare(base, FilterAlloc(after["server"], isReq), nil)
	if len(reg) == 0 {
		t.Fatalf("alloc gate missed the planted allocation; diags = %+v", after["server"])
	}
	found := false
	for _, d := range reg {
		if strings.Contains(d.Key, "handleSum") && strings.Contains(d.Key, "heap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("alloc regressions %+v do not include handleSum's heap diagnostic", reg)
	}
}

// TestCollectAttributesFunctions checks end-to-end that Collect maps
// diagnostics to their enclosing functions via the func locator.
func TestCollectAttributesFunctions(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	root := t.TempDir()
	pkgDir := filepath.Join(root, "kernel")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module sandbox\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package kernel

var sink *int

// Leak forces a moved-to-heap diagnostic.
func Leak() *int {
	v := 41
	sink = &v
	return sink
}
`
	if err := os.WriteFile(filepath.Join(pkgDir, "kernel.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Root: root, Packages: []string{"kernel"}}
	byPkg, err := cfg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var sawLeak bool
	for _, d := range byPkg["kernel"] {
		if d.Func == "Leak" && d.Category == "moved to heap" {
			sawLeak = true
		}
	}
	if !sawLeak {
		t.Fatalf("no moved-to-heap diagnostic attributed to Leak: %+v", byPkg["kernel"])
	}
}
