// Package compile is spmvlint's second layer: a regression gate over
// the Go compiler's own bounds-check-elimination and escape-analysis
// diagnostics. It builds the kernel packages with
//
//	go build -gcflags='-m=1 -d=ssa/check_bce'
//
// parses the emitted diagnostics, attributes each to its enclosing
// function, and diffs the result against a checked-in per-package
// baseline. A new "Found IsInBounds" or "escapes to heap" inside a
// hot-kernel function (srccheck.IsHotFunc) fails the gate — those are
// exactly the hidden instructions and allocations the paper's
// bandwidth argument says the decode loops cannot afford — while stale
// baseline entries are reported so BCE wins get locked in rather than
// silently regressing later.
package compile

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// KernelPackages is the default gate scope: every package that
// contains an SpMV kernel or sits on the multithreaded hot path,
// as module-relative directories.
func KernelPackages() []string {
	return []string{
		"internal/csr",
		"internal/csrdu",
		"internal/csrvi",
		"internal/csrduvi",
		"internal/dcsr",
		"internal/bcsr",
		"internal/ell",
		"internal/jds",
		"internal/parallel",
		"internal/vec",
	}
}

// AllocPackages is the allocation-gate scope: the serving stack whose
// per-request functions must hold their heap-allocation counts. The
// coalescer lives in internal/server; the executor fan-out in
// internal/parallel (which is also kernel-gated — one build feeds
// both gates).
func AllocPackages() []string {
	return []string{
		"internal/server",
		"internal/parallel",
	}
}

// AllocBaselineKey names the pseudo-package under which a package's
// allocation baseline is stored, keeping the files distinct from the
// BCE/escape baselines for the same package.
func AllocBaselineKey(pkg string) string { return "alloc/" + pkg }

// IsAllocCategory reports whether a gated category represents a heap
// allocation (as opposed to a bounds check).
func IsAllocCategory(cat string) bool {
	return cat == "escapes to heap" || cat == "moved to heap"
}

// FilterAlloc keeps the heap-allocation diagnostics attributed to
// request-path functions — the alloc gate's input. Diagnostics at
// package scope (Func == "") are kept too: a global that escapes is
// charged once, but a new one still deserves a look.
func FilterAlloc(diags []Diag, isRequestPath func(string) bool) []Diag {
	var out []Diag
	for _, d := range diags {
		if !IsAllocCategory(d.Category) {
			continue
		}
		if d.Func != "" && isRequestPath != nil && !isRequestPath(d.Func) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Diag is one compiler diagnostic of a gated category.
type Diag struct {
	File     string `json:"file"` // module-relative path
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Func     string `json:"func"`     // enclosing function, e.g. "(*Matrix).SpMV"
	Category string `json:"category"` // IsInBounds, IsSliceInBounds, escapes to heap, moved to heap
}

// Key is the baseline identity of a diagnostic: function and category,
// not line numbers, so unrelated edits do not churn the baseline.
func (d Diag) Key() string {
	return d.File + "|" + d.Func + "|" + d.Category
}

// Config drives one gate run.
type Config struct {
	Root     string   // module root; go build runs here
	Packages []string // module-relative package dirs (default KernelPackages)
}

// Collect compiles the configured packages and returns the gated
// diagnostics grouped by module-relative package dir.
func (c *Config) Collect() (map[string][]Diag, error) {
	pkgs := c.Packages
	if len(pkgs) == 0 {
		pkgs = KernelPackages()
	}
	args := []string{"build", "-gcflags=-m=1 -d=ssa/check_bce"}
	for _, p := range pkgs {
		args = append(args, "./"+p)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = c.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("compile gate: go build failed: %v\n%s", err, out)
	}
	raw := ParseDiagnostics(string(out))
	byPkg := map[string][]Diag{}
	funcs := newFuncLocator(c.Root)
	for _, d := range raw {
		d.Func = funcs.at(d.File, d.Line)
		pkg := path.Dir(d.File)
		byPkg[pkg] = append(byPkg[pkg], d)
	}
	for _, pkg := range pkgs {
		if _, ok := byPkg[pkg]; !ok {
			byPkg[pkg] = nil // clean package: still gets a (empty) baseline
		}
	}
	return byPkg, nil
}

// gated maps a raw compiler message to its gate category ("" = not
// gated: inlining chatter, "does not escape", parameter leaks).
func gated(msg string) string {
	switch {
	case msg == "Found IsInBounds":
		return "IsInBounds"
	case msg == "Found IsSliceInBounds":
		return "IsSliceInBounds"
	case strings.HasSuffix(msg, "escapes to heap"):
		if strings.HasSuffix(msg, "does not escape to heap") { // defensive; gc prints "does not escape"
			return ""
		}
		return "escapes to heap"
	case strings.Contains(msg, "moved to heap"):
		return "moved to heap"
	}
	return ""
}

// ParseDiagnostics extracts the gated diagnostics from go build
// -gcflags output. Lines look like
//
//	# spmv/internal/csr
//	internal/csr/csr.go:99:18: Found IsInBounds
//	internal/csr/csr.go:47:78: ~r0 escapes to heap
//
// Package header lines and non-gated messages are skipped; positions
// are kept as printed (module-relative when the build runs at the
// module root).
func ParseDiagnostics(output string) []Diag {
	var diags []Diag
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// file:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		lineNo, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		msg := strings.TrimSpace(parts[3])
		cat := gated(msg)
		if cat == "" {
			continue
		}
		diags = append(diags, Diag{
			File:     filepath.ToSlash(parts[0]),
			Line:     lineNo,
			Col:      col,
			Category: cat,
		})
	}
	return diags
}

// funcLocator maps file:line to the enclosing top-level function,
// parsing each referenced file once (no type checking needed).
type funcLocator struct {
	root  string
	fset  *token.FileSet
	files map[string][]funcSpan
}

type funcSpan struct {
	start, end int // line range, inclusive
	name       string
}

func newFuncLocator(root string) *funcLocator {
	return &funcLocator{root: root, fset: token.NewFileSet(), files: map[string][]funcSpan{}}
}

func (l *funcLocator) at(relFile string, line int) string {
	spans, ok := l.files[relFile]
	if !ok {
		spans = l.parse(relFile)
		l.files[relFile] = spans
	}
	for _, s := range spans {
		if s.start <= line && line <= s.end {
			return s.name
		}
	}
	return ""
}

func (l *funcLocator) parse(relFile string) []funcSpan {
	f, err := parser.ParseFile(l.fset, filepath.Join(l.root, filepath.FromSlash(relFile)), nil, 0)
	if err != nil {
		return nil
	}
	var spans []funcSpan
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		spans = append(spans, funcSpan{
			start: l.fset.Position(fd.Pos()).Line,
			end:   l.fset.Position(fd.End()).Line,
			name:  funcName(fd),
		})
	}
	return spans
}

// funcName renders a declaration name with its receiver type, e.g.
// "(*Matrix).SpMV" or "spmvRange".
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	switch t := recv.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return "(" + t.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// Counts collapses diagnostics into baseline form: key → occurrence
// count.
func Counts(diags []Diag) map[string]int {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Key()]++
	}
	return counts
}

// Delta is one baseline difference.
type Delta struct {
	Key  string `json:"key"`
	Have int    `json:"have"` // current count
	Want int    `json:"want"` // baseline count
	Hot  bool   `json:"hot"`  // enclosing function is in the hot-kernel set
}

func (d Delta) String() string {
	parts := strings.SplitN(d.Key, "|", 3)
	where := d.Key
	if len(parts) == 3 {
		fn := parts[1]
		if fn == "" {
			fn = "<package scope>"
		}
		where = fmt.Sprintf("%s %s: %s", parts[0], fn, parts[2])
	}
	return fmt.Sprintf("%s (%d, baseline %d)", where, d.Have, d.Want)
}

// Compare diffs current diagnostics against a baseline. Regressions
// are keys whose count grew (or appeared); improvements are keys whose
// count shrank (or vanished) — stale baseline entries that an
// -update-baseline run locks in. isHot classifies function names; nil
// means nothing is hot.
func Compare(baseline map[string]int, diags []Diag, isHot func(string) bool) (regressions, improvements []Delta) {
	current := Counts(diags)
	keys := map[string]bool{}
	for k := range baseline {
		keys[k] = true
	}
	for k := range current {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		have, want := current[k], baseline[k]
		if have == want {
			continue
		}
		hot := false
		if isHot != nil {
			if parts := strings.SplitN(k, "|", 3); len(parts) == 3 {
				hot = isHot(parts[1])
			}
		}
		d := Delta{Key: k, Have: have, Want: want, Hot: hot}
		if have > want {
			regressions = append(regressions, d)
		} else {
			improvements = append(improvements, d)
		}
	}
	return regressions, improvements
}
