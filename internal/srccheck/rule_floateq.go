package srccheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqRule flags == and != between floating-point operands. Exact
// float comparison is the business of the value-compression code —
// CSR-VI's unique-value table and FPC's predictors key on exact bit
// patterns (the paper is explicit that distinctness is bitwise) — so
// internal/csrvi and internal/fpc are exempt. Everywhere else an exact
// comparison is almost always a latent tolerance bug; compare against
// an epsilon, use math.Float64bits for intentional bit identity, or
// math.IsNaN for NaN tests.
type floatEqRule struct{}

func (floatEqRule) Name() string { return "floateq" }
func (floatEqRule) Doc() string {
	return "no float ==/!= comparisons outside the csrvi/fpc quantization code"
}

// floatEqExempt lists the module-relative package dirs whose job is
// exact-value quantization.
var floatEqExempt = []string{"internal/csrvi", "internal/fpc"}

func (floatEqRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, exempt := range floatEqExempt {
		if pkg.RelPath == exempt {
			return
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pkg.Info.Types[bin.X].Type) && isFloat(pkg.Info.Types[bin.Y].Type) {
				report(bin.OpPos, "float %s comparison; use an epsilon, math.Float64bits, or math.IsNaN", bin.Op)
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point
// basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
