package srccheck

import (
	"go/token"
	"go/types"
)

// verifierRule enforces registry exhaustiveness for the validation
// layer: every exported type that implements core.Format must also
// implement core.Verifier, so no storage scheme can be registered
// whose on-disk or in-memory form escapes the Verify gate. The check
// is a go/types method-set comparison, not a naming convention.
type verifierRule struct{}

func (verifierRule) Name() string { return "verifier" }
func (verifierRule) Doc() string {
	return "every exported core.Format implementation must also implement core.Verifier"
}

func (verifierRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	core := m.LookupSuffix("internal/core")
	if core == nil || core.Types == nil {
		return
	}
	format := lookupInterface(core.Types, "Format")
	verifier := lookupInterface(core.Types, "Verifier")
	if format == nil || verifier == nil {
		return
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !obj.Exported() || obj.IsAlias() {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, format) && !types.Implements(ptr, format) {
			continue
		}
		if types.Implements(named, verifier) || types.Implements(ptr, verifier) {
			continue
		}
		report(obj.Pos(), "%s implements core.Format but not core.Verifier; add a Verify() error method checking its structural invariants", name)
	}
}

// lookupInterface resolves a package-scope interface type by name.
func lookupInterface(pkg *types.Package, name string) *types.Interface {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}
