package srccheck

import (
	"go/ast"
	"go/token"

	"spmv/internal/srccheck/flow"
)

// deferloopRule flags defer statements inside loop bodies of hot
// functions. Deferred calls accumulate until the function returns, so
// a defer in a per-row or per-chunk loop allocates a defer record per
// iteration and releases nothing until the whole kernel finishes —
// the opposite of what the author intended for scoped cleanup. The
// rule is restricted to IsHotFunc code: in setup and teardown paths a
// looped defer is occasionally the right tool (e.g. closing a small
// fixed set of files at exit) and not worth the noise.
type deferloopRule struct{}

func (deferloopRule) Name() string { return "deferloop" }
func (deferloopRule) Doc() string {
	return "no defer inside loop bodies of hot-path functions (defer records pile up per iteration)"
}

func (r deferloopRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHotFunc(fd.Name.Name) {
				continue
			}
			g := flow.New(fd.Body)
			seen := map[*ast.DeferStmt]bool{}
			for _, b := range g.Blocks {
				if b.LoopDepth == 0 {
					continue
				}
				for _, n := range b.Nodes {
					d, ok := n.(*ast.DeferStmt)
					if !ok || seen[d] {
						continue
					}
					seen[d] = true
					report(d.Pos(),
						"defer inside a loop in hot function %s runs only at function exit and allocates per iteration; hoist it or use an explicit call",
						fd.Name.Name)
				}
			}
		}
	}
}
