package srccheck

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path"
	"strings"
)

// Allowlist suppresses specific rule findings. Each entry is one line
//
//	rule path-glob [func-glob]
//
// where path-glob matches the module-relative file path (path.Match
// syntax, so "internal/*/trace.go" covers one file per package) and the
// optional func-glob matches the enclosing function name (default "*").
// Blank lines and #-comments are ignored. The intent is for this file
// to stay nearly empty: fix findings instead of allowlisting them, and
// justify every entry with a comment.
// Every entry's matches are counted: after a full run, entries that
// suppressed nothing are stale — the finding they covered was fixed —
// and Stale returns them so spmvlint can fail the run or rewrite the
// file (-prune). A suppression that outlives its finding is worse
// than dead weight: it silently swallows the next genuine finding at
// the same location.
type Allowlist struct {
	entries []allowEntry
}

type allowEntry struct {
	rule, pathGlob, funcGlob string
	line                     int    // 1-based line in the source file
	text                     string // raw line, for reporting
	hits                     int
}

// ParseAllowlist reads allowlist entries from r.
func ParseAllowlist(r io.Reader) (*Allowlist, error) {
	a := &Allowlist{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("allowlist line %d: want \"rule path-glob [func-glob]\", got %q", line, text)
		}
		e := allowEntry{rule: fields[0], pathGlob: fields[1], funcGlob: "*", line: line, text: text}
		if len(fields) == 3 {
			e.funcGlob = fields[2]
		}
		// Validate the patterns eagerly so a bad glob fails loudly here
		// rather than silently never matching.
		if _, err := path.Match(e.pathGlob, "x"); err != nil {
			return nil, fmt.Errorf("allowlist line %d: bad path glob %q", line, e.pathGlob)
		}
		if _, err := path.Match(e.funcGlob, "x"); err != nil {
			return nil, fmt.Errorf("allowlist line %d: bad func glob %q", line, e.funcGlob)
		}
		a.entries = append(a.entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// LoadAllowlist reads the allowlist at the given path; a missing file
// yields an empty allowlist.
func LoadAllowlist(filename string) (*Allowlist, error) {
	data, err := os.ReadFile(filename)
	if os.IsNotExist(err) {
		return &Allowlist{}, nil
	}
	if err != nil {
		return nil, err
	}
	a, err := ParseAllowlist(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filename, err)
	}
	return a, nil
}

// Len returns the number of entries.
func (a *Allowlist) Len() int { return len(a.entries) }

// Match reports whether a finding of the given rule, at the given
// module-relative file and enclosing function, is suppressed. Every
// entry that matches is credited a hit (not just the first), so
// staleness reflects what each line actually suppresses.
func (a *Allowlist) Match(rule, relpath, fn string) bool {
	matched := false
	for i := range a.entries {
		e := &a.entries[i]
		if e.rule != rule && e.rule != "*" {
			continue
		}
		if matchGlob(e.pathGlob, relpath) && matchGlob(e.funcGlob, fn) {
			e.hits++
			matched = true
		}
	}
	return matched
}

// StaleEntry is one allowlist line that suppressed no finding.
type StaleEntry struct {
	Line int    `json:"line"`
	Text string `json:"text"`
}

// Stale returns the entries with zero hits, in file order. Only
// meaningful after a complete Run with the full rule set: an entry
// for a disabled rule or a skipped package would be reported stale
// when it is merely unexercised, so callers must not consult Stale on
// partial runs.
func (a *Allowlist) Stale() []StaleEntry {
	var out []StaleEntry
	for _, e := range a.entries {
		if e.hits == 0 {
			out = append(out, StaleEntry{Line: e.line, Text: e.text})
		}
	}
	return out
}

// PruneAllowlist rewrites the allowlist file dropping the given stale
// entry lines; comments, blank lines and live entries survive
// untouched. A missing file is a no-op.
func PruneAllowlist(filename string, stale []StaleEntry) error {
	data, err := os.ReadFile(filename)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	drop := map[int]bool{}
	for _, s := range stale {
		drop[s.Line] = true
	}
	lines := strings.Split(string(data), "\n")
	kept := lines[:0]
	for i, l := range lines {
		if drop[i+1] {
			continue
		}
		kept = append(kept, l)
	}
	return os.WriteFile(filename, []byte(strings.Join(kept, "\n")), 0o644)
}

// matchGlob wraps path.Match for patterns already validated at parse
// time; a pattern error (impossible here) counts as no match.
func matchGlob(pattern, name string) bool {
	ok, err := path.Match(pattern, name)
	return err == nil && ok
}
