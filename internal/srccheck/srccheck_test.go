package srccheck

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func loadFixture(t *testing.T) *Module {
	t.Helper()
	m, err := Load(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatalf("Load fixture: %v", err)
	}
	return m
}

func TestLoadFixtureModule(t *testing.T) {
	m := loadFixture(t)
	if m.Path != "fixture" {
		t.Fatalf("module path = %q, want fixture", m.Path)
	}
	want := []string{"cmd/tool", "internal/conc", "internal/core", "internal/csrvi", "internal/sample"}
	var got []string
	for _, p := range m.Pkgs {
		got = append(got, p.RelPath)
	}
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("packages = %v, want %v", got, want)
	}
}

// TestLoaderRespectsBuildConstraints: the fixture's internal/conc
// carries conc_stub.go behind an always-false //go:build tag, with
// declarations that collide with conc.go. Loading succeeds only if
// the loader honors the constraint; the excluded file must not appear
// in the package file list.
func TestLoaderRespectsBuildConstraints(t *testing.T) {
	m := loadFixture(t) // Load fails with duplicate declarations if the constraint is ignored
	pkg := m.LookupSuffix("internal/conc")
	if pkg == nil {
		t.Fatal("fixture package internal/conc not loaded")
	}
	for _, name := range pkg.Filenames {
		if strings.HasSuffix(name, "conc_stub.go") {
			t.Fatalf("build-constrained file %s was loaded", name)
		}
	}
}

// TestRulesOnFixture runs the whole default suite over the fixture
// module and asserts the exact finding set: every planted violation
// fires, every planted non-violation stays silent.
func TestRulesOnFixture(t *testing.T) {
	m := loadFixture(t)
	issues := Run(m, DefaultRules(), &Allowlist{})
	var got []string
	for _, is := range issues {
		got = append(got, fmt.Sprintf("%s %s %s", is.Rule, is.File, is.Func))
	}
	sort.Strings(got)
	want := []string{
		"ctxflow internal/conc/conc.go CallsPkgLevel",
		"ctxflow internal/conc/conc.go MintsBackground",
		"ctxflow internal/conc/conc.go RunsWithoutCtx",
		"deferloop internal/conc/conc.go spmvDeferInLoop",
		"droppederr cmd/tool/main.go main",
		"droppederr internal/sample/sample.go DropsErrors",
		"droppederr internal/sample/sample.go DropsErrors",
		"droppederr internal/sample/sample.go DropsErrors",
		"droppederr internal/sample/sample.go DropsErrors",
		"droppederr internal/sample/sample.go DropsErrors",
		"floateq internal/sample/sample.go FloatCompares",
		"goroleak internal/conc/conc.go SpawnAndAbandon",
		"hotpath internal/sample/sample.go spmvBody",
		"hotpath internal/sample/sample.go spmvBody",
		"lockbalance internal/conc/conc.go ByValue",
		"lockbalance internal/conc/conc.go CopiesLockParam",
		"lockbalance internal/conc/conc.go LeakOnError",
		"panics internal/sample/sample.go BadPanic",
		"verifier internal/sample/sample.go ",
		"wgbalance internal/conc/conc.go AddsInsideGoroutine",
		"wgbalance internal/conc/conc.go DoneSkippedOnError",
		"wgbalance internal/conc/conc.go WaitsForever",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("findings:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestRuleMessages spot-checks that each rule's message names the
// offending construct.
func TestRuleMessages(t *testing.T) {
	m := loadFixture(t)
	issues := Run(m, DefaultRules(), &Allowlist{})
	wantSubstrings := map[string]string{
		"panics":      "typed error",
		"verifier":    "BadFormat",
		"droppederr":  "dropped",
		"floateq":     "epsilon",
		"hotpath":     "hot kernel",
		"lockbalance": "still held",
		"goroleak":    "unbuffered",
		"ctxflow":     "propagate cancellation",
		"wgbalance":   "Done",
		"deferloop":   "hoist",
	}
	seen := map[string]bool{}
	for _, is := range issues {
		if sub, ok := wantSubstrings[is.Rule]; ok && strings.Contains(is.Msg, sub) {
			seen[is.Rule] = true
		}
	}
	for rule := range wantSubstrings {
		if !seen[rule] {
			t.Errorf("no %s finding mentions %q", rule, wantSubstrings[rule])
		}
	}
}

func TestAllowlistSuppression(t *testing.T) {
	m := loadFixture(t)
	allow, err := ParseAllowlist(strings.NewReader(`
# suppress the planted bare panic only
panics internal/sample/*.go BadPanic
`))
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range Run(m, DefaultRules(), allow) {
		if is.Rule == "panics" {
			t.Fatalf("allowlisted panic still reported: %+v", is)
		}
	}

	allowAll, err := ParseAllowlist(strings.NewReader("* internal/sample/*.go\n* cmd/tool/*.go\n* internal/conc/*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if issues := Run(m, DefaultRules(), allowAll); len(issues) != 0 {
		t.Fatalf("wildcard allowlist left %d findings: %+v", len(issues), issues[0])
	}
}

// TestAllowlistStaleAndPrune exercises the staleness accounting: an
// entry that suppresses a planted finding is live, entries aiming at
// nothing are stale, and PruneAllowlist rewrites the file keeping
// comments and live entries.
func TestAllowlistStaleAndPrune(t *testing.T) {
	m := loadFixture(t)
	content := `# header comment
panics internal/sample/*.go BadPanic
droppederr internal/nonexistent/*.go

# trailing comment
floateq internal/sample/*.go NoSuchFunc
`
	path := filepath.Join(t.TempDir(), "allow")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	allow, err := LoadAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	Run(m, DefaultRules(), allow)
	stale := allow.Stale()
	if len(stale) != 2 {
		t.Fatalf("stale entries = %+v, want 2 (the nonexistent path and the nonexistent func)", stale)
	}
	if stale[0].Line != 3 || stale[1].Line != 6 {
		t.Fatalf("stale lines = %d, %d, want 3 and 6", stale[0].Line, stale[1].Line)
	}

	if err := PruneAllowlist(path, stale); err != nil {
		t.Fatal(err)
	}
	pruned, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(pruned)
	for _, wantKept := range []string{"# header comment", "# trailing comment", "panics internal/sample/*.go BadPanic"} {
		if !strings.Contains(text, wantKept) {
			t.Errorf("prune dropped %q:\n%s", wantKept, text)
		}
	}
	for _, wantGone := range []string{"nonexistent", "NoSuchFunc"} {
		if strings.Contains(text, wantGone) {
			t.Errorf("prune kept stale entry mentioning %q:\n%s", wantGone, text)
		}
	}

	// After the prune, a fresh run leaves nothing stale.
	allow2, err := LoadAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	Run(m, DefaultRules(), allow2)
	if s := allow2.Stale(); len(s) != 0 {
		t.Fatalf("post-prune stale entries = %+v, want none", s)
	}
}

func TestParseAllowlistErrors(t *testing.T) {
	for _, bad := range []string{
		"panics",                       // too few fields
		"panics a b c",                 // too many fields
		"panics internal/[ *",          // bad path glob
		"panics internal/sample.go [x", // bad func glob
	} {
		if _, err := ParseAllowlist(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseAllowlist(%q) accepted invalid input", bad)
		}
	}
}

func TestIsHotFunc(t *testing.T) {
	hot := []string{"SpMV", "SpMVAdd", "SpMVBatch", "Mul", "Dot", "spmvRange",
		"spmvBatch4", "spmvBatchK", "decodeUnit", "addRange",
		"(*Matrix).SpMV", "(*chunk).SpMVBatch",
		"runChunk", "runColJob", "runBlockJob",
		"SpMVPartial", "dotRange", "runNNZChunk", "runSymJob",
		"(*Executor).runChunk", "(*BlockExecutor).runBlockJob",
		"(*nnzChunk).SpMVPartial"}
	cold := []string{"FromCOO", "Verify", "Name", "String", "Split", "Print",
		"worker", "colJobError", "traceTask"}
	for _, name := range hot {
		if !IsHotFunc(name) {
			t.Errorf("IsHotFunc(%q) = false, want true", name)
		}
	}
	for _, name := range cold {
		if IsHotFunc(name) {
			t.Errorf("IsHotFunc(%q) = true, want false", name)
		}
	}
}
