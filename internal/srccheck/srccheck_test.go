package srccheck

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func loadFixture(t *testing.T) *Module {
	t.Helper()
	m, err := Load(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatalf("Load fixture: %v", err)
	}
	return m
}

func TestLoadFixtureModule(t *testing.T) {
	m := loadFixture(t)
	if m.Path != "fixture" {
		t.Fatalf("module path = %q, want fixture", m.Path)
	}
	want := []string{"cmd/tool", "internal/core", "internal/csrvi", "internal/sample"}
	var got []string
	for _, p := range m.Pkgs {
		got = append(got, p.RelPath)
	}
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("packages = %v, want %v", got, want)
	}
}

// TestRulesOnFixture runs the whole default suite over the fixture
// module and asserts the exact finding set: every planted violation
// fires, every planted non-violation stays silent.
func TestRulesOnFixture(t *testing.T) {
	m := loadFixture(t)
	issues := Run(m, DefaultRules(), &Allowlist{})
	var got []string
	for _, is := range issues {
		got = append(got, fmt.Sprintf("%s %s %s", is.Rule, is.File, is.Func))
	}
	sort.Strings(got)
	want := []string{
		"droppederr cmd/tool/main.go main",
		"droppederr internal/sample/sample.go DropsErrors",
		"droppederr internal/sample/sample.go DropsErrors",
		"droppederr internal/sample/sample.go DropsErrors",
		"droppederr internal/sample/sample.go DropsErrors",
		"droppederr internal/sample/sample.go DropsErrors",
		"floateq internal/sample/sample.go FloatCompares",
		"hotpath internal/sample/sample.go spmvBody",
		"hotpath internal/sample/sample.go spmvBody",
		"panics internal/sample/sample.go BadPanic",
		"verifier internal/sample/sample.go ",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("findings:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestRuleMessages spot-checks that each rule's message names the
// offending construct.
func TestRuleMessages(t *testing.T) {
	m := loadFixture(t)
	issues := Run(m, DefaultRules(), &Allowlist{})
	wantSubstrings := map[string]string{
		"panics":     "typed error",
		"verifier":   "BadFormat",
		"droppederr": "dropped",
		"floateq":    "epsilon",
		"hotpath":    "hot kernel",
	}
	seen := map[string]bool{}
	for _, is := range issues {
		if sub, ok := wantSubstrings[is.Rule]; ok && strings.Contains(is.Msg, sub) {
			seen[is.Rule] = true
		}
	}
	for rule := range wantSubstrings {
		if !seen[rule] {
			t.Errorf("no %s finding mentions %q", rule, wantSubstrings[rule])
		}
	}
}

func TestAllowlistSuppression(t *testing.T) {
	m := loadFixture(t)
	allow, err := ParseAllowlist(strings.NewReader(`
# suppress the planted bare panic only
panics internal/sample/*.go BadPanic
`))
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range Run(m, DefaultRules(), allow) {
		if is.Rule == "panics" {
			t.Fatalf("allowlisted panic still reported: %+v", is)
		}
	}

	allowAll, err := ParseAllowlist(strings.NewReader("* internal/sample/*.go\n* cmd/tool/*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if issues := Run(m, DefaultRules(), allowAll); len(issues) != 0 {
		t.Fatalf("wildcard allowlist left %d findings: %+v", len(issues), issues[0])
	}
}

func TestParseAllowlistErrors(t *testing.T) {
	for _, bad := range []string{
		"panics",                       // too few fields
		"panics a b c",                 // too many fields
		"panics internal/[ *",          // bad path glob
		"panics internal/sample.go [x", // bad func glob
	} {
		if _, err := ParseAllowlist(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseAllowlist(%q) accepted invalid input", bad)
		}
	}
}

func TestIsHotFunc(t *testing.T) {
	hot := []string{"SpMV", "SpMVAdd", "SpMVBatch", "Mul", "Dot", "spmvRange",
		"spmvBatch4", "spmvBatchK", "decodeUnit", "addRange",
		"(*Matrix).SpMV", "(*chunk).SpMVBatch",
		"runChunk", "runColJob", "runBlockJob",
		"(*Executor).runChunk", "(*BlockExecutor).runBlockJob"}
	cold := []string{"FromCOO", "Verify", "Name", "String", "Split", "Print",
		"worker", "colJobError", "traceTask"}
	for _, name := range hot {
		if !IsHotFunc(name) {
			t.Errorf("IsHotFunc(%q) = false, want true", name)
		}
	}
	for _, name := range cold {
		if IsHotFunc(name) {
			t.Errorf("IsHotFunc(%q) = true, want false", name)
		}
	}
}
