package srccheck

import (
	"go/ast"
	"go/token"

	"spmv/internal/srccheck/flow"
)

// wgbalanceRule checks sync.WaitGroup discipline across the goroutine
// boundary, intra-procedurally:
//
//  1. wg.Add must not run inside the spawned goroutine — Wait can win
//     the race against Add and return before the work is counted.
//  2. A spawned function literal that calls wg.Done must do so on
//     every path to its exit (defer-aware): a Done skipped on an error
//     branch hangs Wait forever.
//  3. A WaitGroup declared locally, Add-ed and Wait-ed on, but whose
//     count is never dropped — no Done anywhere in the declaration and
//     the group never escapes to a callee — deadlocks at Wait.
//
// Field-carried WaitGroups (e.wg) with Done in another method are a
// cross-function protocol this rule cannot see; checks 1 and 2 still
// apply to them, check 3 does not.
type wgbalanceRule struct{}

func (wgbalanceRule) Name() string { return "wgbalance" }
func (wgbalanceRule) Doc() string {
	return "WaitGroup Add/Done/Wait pairing: Add before spawn, Done on all goroutine paths, no Done-less local Wait"
}

func (r wgbalanceRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			r.checkDecl(pkg, fd, report)
		}
	}
}

func (r wgbalanceRule) checkDecl(pkg *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	// Gather every WaitGroup method call in the declaration, noting
	// whether it sits inside a go-spawned literal.
	type wgCall struct {
		call    *ast.CallExpr
		key     string
		method  string
		spawned *ast.FuncLit // innermost go'd literal containing the call, or nil
	}
	var calls []wgCall
	var spawnedLits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				spawnedLits = append(spawnedLits, lit)
			}
		}
		return true
	})
	within := func(pos token.Pos) *ast.FuncLit {
		var innermost *ast.FuncLit
		for _, lit := range spawnedLits {
			if lit.Pos() <= pos && pos < lit.End() {
				if innermost == nil || lit.Pos() > innermost.Pos() {
					innermost = lit
				}
			}
		}
		return innermost
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, prim, method, ok := syncCall(pkg, call)
		if !ok || prim != "WaitGroup" {
			return true
		}
		calls = append(calls, wgCall{call: call, key: exprKey(recv), method: method, spawned: within(call.Pos())})
		return true
	})
	if len(calls) == 0 {
		return
	}

	// Check 1: Add inside a spawned goroutine.
	for _, c := range calls {
		if c.method == "Add" && c.spawned != nil {
			report(c.call.Pos(),
				"%s.Add inside the spawned goroutine races Wait in %s; call Add before the go statement",
				c.key, fd.Name.Name)
		}
	}

	// Check 2: a spawned literal's Done must dominate its exit.
	checked := map[*ast.FuncLit]map[string]bool{}
	for _, c := range calls {
		if c.method != "Done" || c.spawned == nil {
			continue
		}
		if checked[c.spawned] == nil {
			checked[c.spawned] = map[string]bool{}
		}
		if checked[c.spawned][c.key] {
			continue
		}
		checked[c.spawned][c.key] = true
		g := flow.New(c.spawned.Body)
		entry := flow.Site{Block: g.Entry, Index: -1}
		key := c.key
		done := func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return false
			}
			recv, prim, method, ok := syncCall(pkg, call)
			return ok && prim == "WaitGroup" && method == "Done" && exprKey(recv) == key
		}
		if g.CanReachExitWithout(entry, done) {
			report(c.spawned.Pos(),
				"spawned goroutine in %s can return without %s.Done (Wait hangs); use defer %s.Done() first",
				fd.Name.Name, key, key)
		}
	}

	// Check 3: local group with Add and Wait but no Done at all.
	hasAdd, hasWait, hasDone := map[string]token.Pos{}, map[string]token.Pos{}, map[string]bool{}
	for _, c := range calls {
		switch c.method {
		case "Add":
			hasAdd[c.key] = c.call.Pos()
		case "Wait":
			hasWait[c.key] = c.call.Pos()
		case "Done":
			hasDone[c.key] = true
		}
	}
	for key, waitPos := range hasWait {
		if _, added := hasAdd[key]; !added || hasDone[key] {
			continue
		}
		if !wgIsLocalAndCaptive(pkg, fd, key) {
			continue // field-based or escapes to a callee that may Done it
		}
		report(waitPos,
			"%s.Wait in %s can never return: Add is called but no path calls Done and the group never leaves the function",
			key, fd.Name.Name)
	}
}

// wgIsLocalAndCaptive reports whether key names a WaitGroup declared
// inside fd whose every use is a method-call receiver — i.e. no &wg
// handed to a callee, no assignment aliasing it.
func wgIsLocalAndCaptive(pkg *Package, fd *ast.FuncDecl, key string) bool {
	var obj = func() (o interface{ Pos() token.Pos }) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Name != key || o != nil {
				return o == nil
			}
			if d := pkg.Info.Defs[id]; d != nil {
				o = d
				return false
			}
			return true
		})
		return o
	}()
	if obj == nil {
		return false // not declared here (field selector keys never match an Ident def)
	}
	captive := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !captive {
			return false
		}
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if id, ok := u.X.(*ast.Ident); ok && id.Name == key {
				captive = false
				return false
			}
		}
		return true
	})
	return captive
}
