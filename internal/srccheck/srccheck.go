// Package srccheck is the source layer of spmvlint, the project's
// static-analysis gate. It loads every non-test package of the module
// with the standard library's go/parser and go/types (no external
// tooling), then runs a suite of project-specific rules over the typed
// ASTs: no panics in library code, registry exhaustiveness (every
// exported Format implements core.Verifier), no dropped errors, no
// float equality outside the quantization code, and no formatting or
// interface-boxing calls inside the hot SpMV/decode kernels.
//
// The companion package srccheck/compile adds the second layer: a
// bounds-check-elimination and escape-analysis regression gate over the
// compiler's -m / -d=ssa/check_bce diagnostics.
package srccheck

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked non-test package of the
// module under analysis.
type Package struct {
	ImportPath string // full import path, e.g. "spmv/internal/csr"
	RelPath    string // module-relative dir ("" for the root package)
	Dir        string // absolute directory
	Filenames  []string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Module is the analysis unit: the whole module rooted at Root.
type Module struct {
	Root string // absolute module root (directory of go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	byPath map[string]*Package
}

// Lookup returns the module package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// LookupSuffix returns the unique module package whose import path ends
// with the given suffix (e.g. "internal/core"), or nil. It lets rules
// find well-known packages without hard-coding the module path, so the
// same rules run against test fixture modules.
func (m *Module) LookupSuffix(suffix string) *Package {
	var found *Package
	for _, p := range m.Pkgs {
		if p.ImportPath == suffix || strings.HasSuffix(p.ImportPath, "/"+suffix) {
			if found != nil {
				return nil // ambiguous
			}
			found = p
		}
	}
	return found
}

// skipDir reports whether a directory is excluded from the walk.
func skipDir(name string) bool {
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
		name == "testdata" || name == "vendor" || name == "node_modules"
}

// Load parses and type-checks every non-test package under root, which
// must contain a go.mod. Test files (_test.go) are excluded: the rules
// govern library and command code, not tests.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: map[string]*Package{},
	}
	if err := m.parseAll(); err != nil {
		return nil, err
	}
	if err := m.typeCheckAll(); err != nil {
		return nil, err
	}
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("srccheck: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("srccheck: no module directive in %s", gomod)
}

// parseAll walks the module tree and parses every non-test .go file,
// grouping files into one package per directory.
func (m *Module) parseAll() error {
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != m.Root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		// Respect //go:build constraints and GOOS/GOARCH filename
		// suffixes: a file excluded from the current configuration
		// would double-declare symbols (or reference missing ones) and
		// break type checking of its package.
		if match, err := build.Default.MatchFile(dir, d.Name()); err != nil || !match {
			return err
		}
		rel, err := filepath.Rel(m.Root, dir)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		importPath := m.Path
		if rel != "" {
			importPath = m.Path + "/" + rel
		}
		pkg := m.byPath[importPath]
		if pkg == nil {
			pkg = &Package{ImportPath: importPath, RelPath: rel, Dir: dir}
			m.byPath[importPath] = pkg
			m.Pkgs = append(m.Pkgs, pkg)
		}
		file, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("srccheck: %w", err)
		}
		pkg.Filenames = append(pkg.Filenames, path)
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].ImportPath < m.Pkgs[j].ImportPath })
	return nil
}

// moduleImports returns the module-internal import paths of a package.
func (m *Module) moduleImports(p *Package) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (path == m.Path || strings.HasPrefix(path, m.Path+"/")) && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// typeCheckAll type-checks the module packages in dependency order.
// Module-internal imports resolve to the packages checked here;
// everything else (the standard library) goes through the source
// importer, keeping the analyzer free of compiled export data.
func (m *Module) typeCheckAll() error {
	order, err := m.topoOrder()
	if err != nil {
		return err
	}
	imp := &moduleImporter{
		mod: m,
		std: importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, p := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		cfg := types.Config{Importer: imp}
		tpkg, err := cfg.Check(p.ImportPath, m.Fset, p.Files, info)
		if err != nil {
			return fmt.Errorf("srccheck: type-checking %s: %w", p.ImportPath, err)
		}
		p.Types = tpkg
		p.Info = info
	}
	return nil
}

// topoOrder sorts the module packages so that every package follows its
// module-internal dependencies.
func (m *Module) topoOrder() ([]*Package, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("srccheck: import cycle through %s", p.ImportPath)
		}
		state[p.ImportPath] = visiting
		for _, dep := range m.moduleImports(p) {
			if dp := m.byPath[dep]; dp != nil && dp != p {
				if err := visit(dp); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = done
		order = append(order, p)
		return nil
	}
	for _, p := range m.Pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal paths from the packages being
// checked and defers to the source importer for the rest.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (i *moduleImporter) Import(path string) (*types.Package, error) {
	if p := i.mod.byPath[path]; p != nil {
		if p.Types == nil {
			return nil, fmt.Errorf("srccheck: %s imported before it was checked", path)
		}
		return p.Types, nil
	}
	return i.std.Import(path)
}
