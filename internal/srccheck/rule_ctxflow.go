package srccheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflowRule enforces context propagation on request paths. A
// function that holds a context — it has a context.Context or
// *http.Request parameter — must pass it down:
//
//  1. It must not call a method or function when a sibling with the
//     same name plus a "Ctx" suffix exists whose first parameter is a
//     context.Context. Calling exec.Run where exec.RunCtx exists
//     silently detaches the work from the request's deadline and
//     cancellation.
//  2. It must not mint a fresh root with context.Background() or
//     context.TODO(); the caller's context is right there.
//
// Both checks are gated on the parameter being present, so
// constructors, mains and tests that legitimately create roots are
// untouched.
type ctxflowRule struct{}

func (ctxflowRule) Name() string { return "ctxflow" }
func (ctxflowRule) Doc() string {
	return "context-holding functions must use the ...Ctx call variant when one exists and must not mint context.Background()"
}

func (r ctxflowRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !holdsContext(pkg, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				r.checkCall(pkg, fd, call, report)
				return true
			})
		}
	}
}

// holdsContext reports whether the declaration receives a context,
// directly or via *http.Request.
func holdsContext(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		if isContextType(tv.Type) || isHTTPRequestPtr(tv.Type) {
			return true
		}
	}
	return false
}

func (r ctxflowRule) checkCall(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, report func(pos token.Pos, format string, args ...any)) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
			(fn.Name() == "Background" || fn.Name() == "TODO") {
			report(call.Pos(),
				"%s holds a context but mints context.%s(); thread the caller's context instead",
				fd.Name.Name, fn.Name())
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || takesContext(sig) {
			return // already context-aware
		}
		if sig.Recv() != nil {
			// Method call: does the receiver type offer <name>Ctx?
			if variantOK(methodVariant(pkg, sig.Recv().Type(), fn.Name()+"Ctx")) {
				report(call.Pos(),
					"%s holds a context but calls %s.%s; use %s.%sCtx to propagate cancellation",
					fd.Name.Name, exprKey(fun.X), fn.Name(), exprKey(fun.X), fn.Name())
			}
			return
		}
		// Package-qualified function call: pkg.Run with pkg.RunCtx.
		if fn.Pkg() != nil && variantOK(fn.Pkg().Scope().Lookup(fn.Name()+"Ctx")) {
			report(call.Pos(),
				"%s holds a context but calls %s.%s; use %s.%sCtx to propagate cancellation",
				fd.Name.Name, fn.Pkg().Name(), fn.Name(), fn.Pkg().Name(), fn.Name())
		}
	case *ast.Ident:
		fn, ok := pkg.Info.Uses[fun].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil || takesContext(sig) {
			return
		}
		if variantOK(fn.Pkg().Scope().Lookup(fn.Name() + "Ctx")) {
			report(call.Pos(),
				"%s holds a context but calls %s; use %sCtx to propagate cancellation",
				fd.Name.Name, fn.Name(), fn.Name())
		}
	}
}

// takesContext reports whether any parameter of the signature is a
// context.Context.
func takesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// methodVariant looks up a method by name on a receiver type.
func methodVariant(pkg *Package, recv types.Type, name string) types.Object {
	obj, _, _ := types.LookupFieldOrMethod(recv, true, pkg.Types, name)
	return obj
}

// variantOK reports whether the looked-up object is a function whose
// first parameter is a context.Context — i.e. a genuine Ctx variant.
func variantOK(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}
