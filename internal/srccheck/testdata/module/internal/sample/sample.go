// Package sample is the rule fixture: each construct below either
// must or must not be reported, and srccheck_test.go asserts the
// exact finding set.
package sample

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"fixture/internal/core"
)

// BadFormat implements core.Format but not core.Verifier: the
// verifier rule must fire on it.
type BadFormat struct{ n int }

func (b *BadFormat) Name() string        { return "bad" }
func (b *BadFormat) Rows() int           { return b.n }
func (b *BadFormat) Cols() int           { return b.n }
func (b *BadFormat) NNZ() int            { return 0 }
func (b *BadFormat) SizeBytes() int64    { return 0 }
func (b *BadFormat) SpMV(y, x []float64) {}

// GoodFormat implements both interfaces: no finding.
type GoodFormat struct{ n int }

func (g *GoodFormat) Name() string        { return "good" }
func (g *GoodFormat) Rows() int           { return g.n }
func (g *GoodFormat) Cols() int           { return g.n }
func (g *GoodFormat) NNZ() int            { return 0 }
func (g *GoodFormat) SizeBytes() int64    { return 0 }
func (g *GoodFormat) SpMV(y, x []float64) {}
func (g *GoodFormat) Verify() error       { return nil }

// NotAFormat implements neither: no finding.
type NotAFormat struct{}

// BadPanic panics with a bare string: the panics rule must fire.
func BadPanic() {
	panic("sample: bare panic")
}

// GoodPanic panics with a typed error: exempt.
func GoodPanic() {
	panic(core.Corruptf("sample: typed panic"))
}

func mayFail() error           { return errors.New("x") }
func twoResults() (int, error) { return 0, errors.New("x") }

// DropsErrors discards errors four ways: the droppederr rule must
// fire on each.
func DropsErrors() int {
	mayFail()            // want: bare call
	defer mayFail()      // want: defer
	go mayFail()         // want: go
	n, _ := twoResults() // want: blank slot
	_ = mayFail()        // want: blank assign
	return n
}

// HandlesErrors checks or propagates everything plus uses the exempt
// print family: no findings.
func HandlesErrors() error {
	if err := mayFail(); err != nil {
		return err
	}
	fmt.Println("console is exempt")
	fmt.Fprintf(os.Stderr, "stderr is exempt\n")
	var buf bytes.Buffer
	buf.WriteString("in-memory sinks are exempt")
	fmt.Fprintf(&buf, "also via Fprintf\n")
	return mayFail()
}

// FloatCompares has one violating and one clean comparison.
func FloatCompares(a, b float64, i, j int) bool {
	if a == b { // want: floateq
		return true
	}
	return i == j // ints are fine
}

// SpMV is a hot-kernel function by name: the formatted call and the
// interface boxing must be reported; the typed panic must not.
func (b *BadFormat) spmvBody(y, x []float64, sink func(any)) {
	fmt.Println("formatting in a kernel") // want: hotpath fmt call
	sink(42)                              // want: hotpath boxing
	if len(y) != len(x) {
		panic(core.Corruptf("sample: shape")) // exempt: cold trap
	}
}

// Helper is not hot: the same constructs are fine here.
func Helper(sink func(any)) {
	fmt.Println("cold path")
	sink(42)
}
