// Package core mirrors the real module's core interfaces so the rule
// fixtures can exercise the verifier rule's method-set analysis.
package core

import (
	"errors"
	"fmt"
)

// Format mirrors spmv/internal/core.Format.
type Format interface {
	Name() string
	Rows() int
	Cols() int
	NNZ() int
	SizeBytes() int64
	SpMV(y, x []float64)
}

// Verifier mirrors spmv/internal/core.Verifier.
type Verifier interface {
	Verify() error
}

// ErrCorrupt mirrors the real sentinel.
var ErrCorrupt = errors.New("corrupt")

// Corruptf mirrors the real typed-panic helper.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}
