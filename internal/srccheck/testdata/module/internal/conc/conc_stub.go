//go:build spmv_never_built

// This file is excluded by its build constraint under every real
// configuration. It redeclares symbols from conc.go, so a loader that
// ignores //go:build lines fails type checking with duplicate
// declarations — the regression TestLoaderRespectsBuildConstraints
// guards against.
package conc

func cond() bool { return true }

func work() { panic("never built") }
