// Package conc plants one positive and one negative case per
// concurrency flow rule (lockbalance, goroleak, ctxflow, wgbalance,
// deferloop). srccheck_test asserts the exact finding set, so every
// function here either fires exactly once or must stay silent.
package conc

import (
	"context"
	"sync"
)

func cond() bool { return false }
func work()      {}
func doWork()    {}

// Engine carries the lock and the Run/RunCtx pair the ctxflow rule
// keys on.
type Engine struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func (e *Engine) Run(n int) int                         { return n }
func (e *Engine) RunCtx(ctx context.Context, n int) int { return n }

// Work / WorkCtx: the package-level variant pair.
func Work(n int) int                         { return n }
func WorkCtx(ctx context.Context, n int) int { return n }

// --- lockbalance ---

// LeakOnError returns early with the mutex still held: positive.
func LeakOnError(e *Engine) bool {
	e.mu.Lock()
	if cond() {
		return false
	}
	e.mu.Unlock()
	return true
}

// Config carries a lock so the by-value copies below are positives.
type Config struct {
	mu sync.Mutex
	N  int
}

// CopiesLockParam takes the lock-bearing struct by value: positive.
func CopiesLockParam(c Config) int { return c.N }

// ByValue is a by-value receiver on a lock-bearing type: positive.
func (c Config) ByValue() int { return c.N }

// DeferBalanced releases through defer on every path: negative.
func DeferBalanced(e *Engine) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cond() {
		return false
	}
	return true
}

// BranchBalanced unlocks on both branches: negative.
func BranchBalanced(e *Engine) int {
	e.mu.Lock()
	if cond() {
		e.mu.Unlock()
		return 1
	}
	e.mu.Unlock()
	return 0
}

// ClosureUnlock releases inside a deferred closure: negative.
func ClosureUnlock(e *Engine) {
	e.mu.Lock()
	defer func() {
		e.mu.Unlock()
	}()
	work()
}

// ReadBalanced pairs RLock with a deferred RUnlock: negative.
func ReadBalanced(e *Engine) {
	e.rw.RLock()
	defer e.rw.RUnlock()
	work()
}

// --- goroleak ---

// SpawnAndAbandon can return before draining the unbuffered channel
// its goroutine blocks on: positive.
func SpawnAndAbandon(e *Engine) int {
	ch := make(chan int)
	go func() {
		ch <- e.Run(1)
	}()
	if cond() {
		return 0
	}
	return <-ch
}

// SpawnBuffered is the same shape with a buffer of one — the send
// always completes: negative.
func SpawnBuffered(e *Engine) int {
	ch := make(chan int, 1)
	go func() {
		ch <- e.Run(1)
	}()
	if cond() {
		return 0
	}
	return <-ch
}

// SpawnAlwaysDrained receives on every path: negative.
func SpawnAlwaysDrained(e *Engine) int {
	ch := make(chan int)
	go func() {
		ch <- e.Run(1)
	}()
	v := <-ch
	return v
}

// --- ctxflow ---

// RunsWithoutCtx holds a context but calls the non-Ctx method
// variant: positive.
func RunsWithoutCtx(ctx context.Context, e *Engine, n int) int {
	_ = ctx
	return e.Run(n)
}

// CallsPkgLevel holds a context but calls the package-level non-Ctx
// variant: positive.
func CallsPkgLevel(ctx context.Context, n int) int {
	_ = ctx
	return Work(n)
}

// MintsBackground holds a context but creates a fresh root: positive.
func MintsBackground(ctx context.Context, e *Engine, n int) int {
	c := context.Background()
	_ = c
	return e.RunCtx(ctx, n)
}

// PropagatesCtx threads its context into the Ctx variant: negative.
func PropagatesCtx(ctx context.Context, e *Engine, n int) int {
	return e.RunCtx(ctx, n)
}

// NoCtxNoObligation has no context to propagate: negative.
func NoCtxNoObligation(e *Engine, n int) int {
	return e.Run(n)
}

// --- wgbalance ---

// AddsInsideGoroutine counts the work from inside the goroutine,
// racing Wait: positive.
func AddsInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)
		work()
		wg.Done()
	}()
	wg.Wait()
}

// DoneSkippedOnError drops the count only on the happy path: positive.
func DoneSkippedOnError() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if cond() {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// WaitsForever Adds and Waits on a captive local group nothing ever
// Dones: positive.
func WaitsForever() {
	var wg sync.WaitGroup
	wg.Add(1)
	go doWork()
	wg.Wait()
}

// DeferredDone is the canonical pattern: negative.
func DeferredDone() {
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// DelegatesDone hands the group to a callee that drops the count:
// negative (the group escapes, the rule stands down).
func DelegatesDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go helperDone(&wg)
	wg.Wait()
}

func helperDone(wg *sync.WaitGroup) { wg.Done() }

// --- deferloop ---

type closer struct{}

func (closer) Close() {}

// spmvDeferInLoop defers inside a per-row loop of a hot function:
// positive.
func spmvDeferInLoop(rows int) {
	for i := 0; i < rows; i++ {
		var c closer
		defer c.Close()
	}
}

// spmvDeferAtTop defers once at function scope: negative.
func spmvDeferAtTop(rows int) {
	var c closer
	defer c.Close()
	for i := 0; i < rows; i++ {
		work()
	}
}

// teardownDeferInLoop loops a defer in cold code: negative.
func teardownDeferInLoop(rows int) {
	for i := 0; i < rows; i++ {
		var c closer
		defer c.Close()
	}
}
