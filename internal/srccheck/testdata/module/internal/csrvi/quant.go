// Package csrvi stands in for the real quantization package: exact
// float comparison is its business, so the floateq rule must stay
// silent here.
package csrvi

// SameValue compares exactly, as the unique-value table requires.
func SameValue(a, b float64) bool { return a == b }
