// Command tool exercises the cmd/ scope of the droppederr rule and
// the panic rule's main-package exemption.
package main

import "errors"

func fallible() error { return errors.New("x") }

func main() {
	fallible() // want: droppederr fires in cmd/ too
	// A panic in package main is not library code: no panics finding.
	if len("x") == 0 {
		panic("unreachable")
	}
}
