package srccheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"spmv/internal/srccheck/flow"
)

// lockbalanceRule checks that every sync.Mutex/RWMutex acquisition
// reaches its release on all paths to the function exit, with defer
// awareness: a deferred unlock (plain or inside a deferred closure)
// satisfies the obligation on every path downstream of the defer
// statement. Paths that panic or os.Exit never "return with the lock
// held" and are vacuously balanced — a recovered panic that leaves a
// mutex locked is real, but that is the deferred-unlock idiom's job
// and flagging it would indict every recover-less lock in the tree.
//
// The rule also flags lock-bearing values copied through a by-value
// receiver or parameter, the intra-procedural slice of vet's
// copylocks: a copied sync.Mutex guards nothing.
type lockbalanceRule struct{}

func (lockbalanceRule) Name() string { return "lockbalance" }
func (lockbalanceRule) Doc() string {
	return "every Mutex/RWMutex Lock must reach its Unlock on all paths (defer-aware); no by-value lock copies"
}

// lockPairs maps an acquisition method to its release.
var lockPairs = map[string]string{
	"Lock":    "Unlock",
	"RLock":   "RUnlock",
	"TryLock": "Unlock", // a successful TryLock holds the lock all the same
}

func (r lockbalanceRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	forEachFuncBody(pkg, func(fb funcBody) {
		r.checkBody(pkg, fb, report)
	})
	r.checkCopies(pkg, report)
}

// lockSite is one acquisition found in a body.
type lockSite struct {
	call    *ast.CallExpr
	key     string // receiver expression text, e.g. "c.mu"
	prim    string // Mutex or RWMutex
	acquire string // Lock, RLock
	release string // Unlock, RUnlock
}

func (r lockbalanceRule) checkBody(pkg *Package, fb funcBody, report func(pos token.Pos, format string, args ...any)) {
	var sites []lockSite
	walkShallow(fb.body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, prim, method, ok := syncCall(pkg, call)
		if !ok || (prim != "Mutex" && prim != "RWMutex") {
			return
		}
		release, isAcquire := lockPairs[method]
		if !isAcquire {
			return
		}
		sites = append(sites, lockSite{
			call: call, key: exprKey(recv), prim: prim,
			acquire: method, release: release,
		})
	})
	if len(sites) == 0 {
		return
	}
	g := flow.New(fb.body)
	for _, site := range sites {
		loc, ok := g.FindNode(site.call)
		if !ok {
			continue
		}
		releases := func(n ast.Node) bool { return r.releasesLock(pkg, n, site) }
		if g.CanReachExitWithout(loc, releases) {
			report(site.call.Pos(),
				"%s.%s() can reach the end of %s with the %s still held (no %s on some path; defer the unlock or release before every return)",
				site.key, site.acquire, fb.name, site.prim, site.release)
		}
	}
}

// releasesLock reports whether a node discharges the lock obligation:
// a call to key.Unlock, a defer of it, or a deferred closure whose
// body unlocks it.
func (r lockbalanceRule) releasesLock(pkg *Package, n ast.Node, site lockSite) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		recv, prim, method, ok := syncCall(pkg, n)
		return ok && prim == site.prim && method == site.release && exprKey(recv) == site.key
	case *ast.DeferStmt:
		// Plain "defer mu.Unlock()" is caught by the CallExpr case via
		// node descent; a deferred closure needs its body scanned.
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok && !found {
					if recv, prim, method, ok := syncCall(pkg, call); ok &&
						prim == site.prim && method == site.release && exprKey(recv) == site.key {
						found = true
					}
				}
				return !found
			})
			return found
		}
	}
	return false
}

// checkCopies flags by-value receivers and parameters whose type
// carries a sync primitive.
func (r lockbalanceRule) checkCopies(pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var fields []*ast.Field
			if fd.Recv != nil {
				fields = append(fields, fd.Recv.List...)
			}
			if fd.Type.Params != nil {
				fields = append(fields, fd.Type.Params.List...)
			}
			for _, field := range fields {
				tv, ok := pkg.Info.Types[field.Type]
				if !ok {
					continue
				}
				if _, isPtr := tv.Type.(*types.Pointer); isPtr {
					continue
				}
				if containsLockType(tv.Type) {
					report(field.Type.Pos(),
						"%s passes lock-bearing %s by value in %s; a copied lock guards nothing — pass a pointer",
						fieldLabel(field, fd), tv.Type.String(), fd.Name.Name)
				}
			}
		}
	}
}

// fieldLabel names a receiver/parameter field for the copy message.
func fieldLabel(field *ast.Field, fd *ast.FuncDecl) string {
	if len(field.Names) > 0 {
		return field.Names[0].Name
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && fd.Recv.List[0] == field {
		return "receiver"
	}
	return "parameter"
}

// walkShallow visits the nodes of a function body without descending
// into nested function literals: their statements belong to another
// body, which forEachFuncBody yields separately.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		visit(n)
		return true
	})
}
