package srccheck

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// This file holds the shared resolution helpers of the concurrency
// (flow) rules: mapping call expressions to sync primitives, naming
// lock objects, walking function bodies, and channel provenance.

// funcBody is one analyzable body: a top-level declaration or a
// function literal nested inside one. Rules that build CFGs do so per
// body, so a go statement inside a closure is analyzed against the
// closure's control flow, not the declaration's.
type funcBody struct {
	name string // enclosing declaration name (for messages)
	decl *ast.FuncDecl
	body *ast.BlockStmt
}

// forEachFuncBody yields every function body in the package: each
// FuncDecl and each FuncLit, innermost last.
func forEachFuncBody(pkg *Package, fn func(fb funcBody)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(funcBody{name: fd.Name.Name, decl: fd, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(funcBody{name: fd.Name.Name, decl: fd, body: lit.Body})
				}
				return true
			})
		}
	}
}

// syncCall resolves a call expression to a method on a sync primitive.
// It returns the receiver expression (the lock/group itself), the
// primitive type name ("Mutex", "RWMutex", "WaitGroup") and the method
// name, or ok=false for anything else.
func syncCall(pkg *Package, call *ast.CallExpr) (recv ast.Expr, prim, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, "", "", false
	}
	recvType := fn.Type().(*types.Signature).Recv()
	if recvType == nil {
		return nil, "", "", false
	}
	named := namedOf(recvType.Type())
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	return sel.X, named.Obj().Name(), fn.Name(), true
}

// namedOf unwraps pointers to the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// exprKey renders an expression as its source text, the intra-
// procedural identity of a lock or channel ("c.mu", "wg", "e.start").
func exprKey(e ast.Expr) string { return types.ExprString(e) }

// containsLockType reports whether a type (passed or assigned by
// value) carries a sync primitive that must not be copied: sync.Mutex,
// sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond, directly or in
// any struct field or array element.
func containsLockType(t types.Type) bool {
	return containsLock(t, map[types.Type]bool{})
}

func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if n := namedOf(t); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" {
		switch n.Obj().Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, _ := p.Elem().(*types.Named)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == "Request"
}

// chanProvenance classifies a channel identifier used inside fb: if
// the object it names is created by a visible make(chan ...) anywhere
// in the enclosing declaration, the buffer capacity is returned
// (capKnown=true; cap is the constant capacity, 0 when omitted or
// non-constant-zero). Parameters, struct fields and channels built
// elsewhere come back capKnown=false.
func chanProvenance(pkg *Package, decl *ast.FuncDecl, ch ast.Expr) (capacity int64, capKnown bool) {
	id, ok := ch.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return 0, false
	}
	found := false
	var capVal int64
	ast.Inspect(decl, func(n ast.Node) bool {
		if found {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			lobj := pkg.Info.Defs[lid]
			if lobj == nil {
				lobj = pkg.Info.Uses[lid]
			}
			if lobj != obj || i >= len(assign.Rhs) {
				continue
			}
			call, ok := assign.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			fid, ok := call.Fun.(*ast.Ident)
			if !ok || fid.Name != "make" {
				continue
			}
			if _, isBuiltin := pkg.Info.Uses[fid].(*types.Builtin); !isBuiltin {
				continue
			}
			found = true
			capVal = 0
			if len(call.Args) >= 2 {
				tv, okTV := pkg.Info.Types[call.Args[1]]
				if okTV && tv.Value != nil {
					if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
						capVal = v
					}
				} else {
					// Non-constant capacity: provenance known but the
					// buffering is not; callers must not flag it.
					found = false
					return false
				}
			}
		}
		return true
	})
	return capVal, found
}

// constIntArg extracts a constant integer argument value.
func constIntArg(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
