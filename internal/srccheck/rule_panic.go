package srccheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// panicRule flags panic calls in library code (the root package and
// internal/...). PR 1's panic-recovering executors are a safety net for
// corrupt-data faults, not a licensed control-flow mechanism, so new
// panics need either a typed-error argument — panic(core.Corruptf(...))
// is the documented corrupt-stream trap, recovered into an error that
// satisfies errors.Is(err, core.ErrCorrupt) — or an allowlist entry
// justifying an API-misuse assertion.
type panicRule struct{}

func (panicRule) Name() string { return "panics" }
func (panicRule) Doc() string {
	return "no panic(...) in library code, except typed-error panics (panic of an error value)"
}

func (panicRule) Check(m *Module, pkg *Package, report func(pos token.Pos, format string, args ...any)) {
	if !isLibraryPkg(pkg) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := call.Fun.(*ast.Ident)
			if !ok || ident.Name != "panic" {
				return true
			}
			if _, isBuiltin := pkg.Info.Uses[ident].(*types.Builtin); !isBuiltin {
				return true // a shadowing local named panic
			}
			if len(call.Args) == 1 && isErrorType(pkg.Info.Types[call.Args[0]].Type) {
				return true // typed-error panic: the sanctioned trap form
			}
			report(call.Pos(), "panic in library code; return an error or panic a typed error (core.Corruptf et al.)")
			return true
		})
	}
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
