package autotune

import (
	"encoding/json"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/matgen"
	"spmv/internal/obs"
)

// exactFormats are the registry formats PredictBytes claims exact
// formulas for; the test pins each claim against the real builder.
var exactFormats = []string{
	"csr", "csr16", "csr32", "csr-du", "csr-du-rle", "csr-vi",
	"csr-du-vi", "csc", "bcsr2x2", "bcsr4x4", "ell", "jds", "cds",
	"sym-csr",
}

// TestPredictBytesExact verifies that every prediction marked Exact
// equals the built format's actual traffic, byte for byte.
func TestPredictBytesExact(t *testing.T) {
	all := shapes()
	all["symmetric"] = matgen.Symmetrize(matgen.Banded(rand.New(rand.NewSource(9)), 300, 6, 5, matgen.Values{}))
	for name, c := range all {
		ft := Extract(c)
		for _, fname := range exactFormats {
			pred, exact, feasible, _ := PredictBytes(ft, formats.Spec{Format: fname})
			if !feasible {
				// The builder must agree the format is inapplicable —
				// except where the model is deliberately stricter
				// (csr32 requires lossless values; the builder rounds).
				if fname == "csr32" {
					continue
				}
				if _, err := formats.Build(fname, c); err == nil {
					t.Errorf("%s/%s: predicted infeasible but builder succeeded", name, fname)
				}
				continue
			}
			if !exact {
				t.Errorf("%s/%s: exact format reported estimated", name, fname)
				continue
			}
			f, err := formats.Build(fname, c)
			if err != nil {
				t.Errorf("%s/%s: predicted feasible but build failed: %v", name, fname, err)
				continue
			}
			if got := obs.BytesPerSpMV(f); got != pred {
				t.Errorf("%s/%s: predicted %d bytes/SpMV, actual %d", name, fname, pred, got)
			}
		}
	}
}

// tableShape is one row of the ISSUE's predicted-best table: a
// generator with a known structural story and the formats/scheduling
// the tuner must land on.
func tableShapes() []struct {
	name        string
	gen         func() *core.COO
	wantFormats map[string]bool // acceptable chosen formats
	wantNNZPart bool            // require the nnz/steal scheduling hint
} {
	return []struct {
		name        string
		gen         func() *core.COO
		wantFormats map[string]bool
		wantNNZPart bool
	}{
		{
			// Dense diagonal blocks: BCSR stores them with zero padding
			// and one index per block — classic BCSR/CDS territory.
			// Block size 4 keeps the unit-stride runs below the RLE
			// threshold, so the delta family cannot sneak past BCSR.
			name:        "dense-blocks",
			gen:         func() *core.COO { return matgen.BlockDiag(rand.New(rand.NewSource(21)), 96, 4, matgen.Values{}) },
			wantFormats: map[string]bool{"bcsr4x4": true, "bcsr2x2": true, "cds": true},
		},
		{
			// One row holds 40% of the non-zeros: the format barely
			// matters, the nnz-balanced partition does.
			name:        "skewed-rows",
			gen:         func() *core.COO { return matgen.SkewedRows(rand.New(rand.NewSource(22)), 2000, 4, 17, 0.4, matgen.Values{}) },
			wantFormats: map[string]bool{"csr-du": true, "csr-du-rle": true, "csr": true, "csr16": true},
			wantNNZPart: true,
		},
		{
			// 30 distinct values: the value stream collapses to a
			// 1-byte dictionary index — the paper's CSR-VI case.
			name: "few-unique",
			gen: func() *core.COO {
				base := matgen.RandomUniform(rand.New(rand.NewSource(23)), 1200, 1200, 9, matgen.Values{})
				return matgen.Quantize(base, rand.New(rand.NewSource(24)), 30)
			},
			wantFormats: map[string]bool{"csr-vi": true, "csr-du-vi": true},
		},
		{
			// Wide random pattern, fresh values: only the column deltas
			// compress — the paper's CSR-DU case.
			name: "wide-random",
			gen: func() *core.COO {
				return matgen.RandomUniform(rand.New(rand.NewSource(25)), 1500, 1<<17, 8, matgen.Values{})
			},
			wantFormats: map[string]bool{"csr-du": true, "csr-du-rle": true},
		},
	}
}

// TestPredictedBestShapes is the satellite table test: for each known
// synthetic shape the analytic ranking must land in the expected
// format family (and scheduling hint), and — the acceptance criterion
// — the chosen format's analytic bytes-per-SpMV must be within 5% of
// the true minimum over everything the registry can build.
func TestPredictedBestShapes(t *testing.T) {
	for _, tc := range tableShapes() {
		c := tc.gen()
		rep, err := Tune(c, Options{Threads: 2})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !tc.wantFormats[rep.Chosen.Name()] {
			t.Errorf("%s: chose %q, want one of %v", tc.name, rep.Chosen.Name(), tc.wantFormats)
		}
		if tc.wantNNZPart && rep.Chosen.Partition != "nnz" {
			t.Errorf("%s: chose partition %q, want nnz scheduling for skewed rows", tc.name, rep.Chosen.Partition)
		}

		// True minimum bytes-per-SpMV over every buildable registry
		// format that computes the same product: lossy csr32 only
		// competes when the values survive float32 round-tripping.
		var trueMin int64 = -1
		for _, fname := range formats.Names() {
			if fname == "csr32" && !rep.Features.Lossless32 {
				continue
			}
			f, err := formats.Build(fname, c)
			if err != nil {
				continue
			}
			if b := obs.BytesPerSpMV(f); trueMin < 0 || b < trueMin {
				trueMin = b
			}
		}
		if trueMin <= 0 {
			t.Fatalf("%s: no registry format built", tc.name)
		}
		if float64(rep.ChosenPredBytes) > 1.05*float64(trueMin) {
			t.Errorf("%s: chosen %q predicts %d bytes/SpMV, true registry minimum is %d (>5%% off)",
				tc.name, rep.Chosen.Name(), rep.ChosenPredBytes, trueMin)
		}
	}
}

// TestAnalyticRankingDeterministic runs the no-probe tuner twice over
// every shape and requires bit-identical serialized reports.
func TestAnalyticRankingDeterministic(t *testing.T) {
	for name, c := range shapes() {
		rep1, err := Tune(c, Options{Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep2, err := Tune(c, Options{Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		j1, err := json.Marshal(rep1)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		j2, err := json.Marshal(rep2)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		if string(j1) != string(j2) {
			t.Errorf("%s: analytic ranking not bit-stable:\n%s\n%s", name, j1, j2)
		}
	}
}

// TestCandidatesAlwaysRankCSR makes sure the fallback invariant holds:
// whatever the features, plain CSR (possibly with a scheduling hint)
// stays feasible, so Tune can never come back empty.
func TestCandidatesAlwaysRankCSR(t *testing.T) {
	c := core.NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Finalize()
	rep, err := Tune(c, Options{Threads: 1})
	if err != nil {
		t.Fatalf("tiny matrix: %v", err)
	}
	if rep.Chosen.Name() == "" {
		t.Fatalf("no chosen spec")
	}
}
