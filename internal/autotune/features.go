// Package autotune selects the storage format and scheduler for a
// matrix automatically. It is the repo's realization of ROADMAP item 2
// and of the direction the paper's authors took after CSR-DU/VI: the
// best of the registry's formats depends on measurable structure
// (delta-width histograms, unique-value counts, nnz/row skew, banding,
// blocking, symmetry), so the tuner extracts those features, ranks
// every candidate by predicted bytes-per-SpMV under the §II-B traffic
// model, blends in measured per-host priors from the benchmark archive
// when they are statistically significant, and optionally short-probes
// the top candidates within a time budget to let the hardware cast the
// deciding vote.
package autotune

import (
	"math"

	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/prof"
	"spmv/internal/reorder"
	"spmv/internal/varint"
)

// Features are the structural properties of a matrix that drive format
// selection. Every field is derived deterministically from the triplet
// data: extracting twice yields identical values.
type Features struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	NNZ  int `json:"nnz"`

	// Row distribution: non-empty row count, extreme/mean nnz per row,
	// the coefficient of variation across all rows, and the skew ratio
	// max/mean. High skew is what makes static row partitions collapse
	// and nnz splitting or work stealing win.
	NonEmptyRows int     `json:"non_empty_rows"`
	MaxRowNNZ    int     `json:"max_row_nnz"`
	AvgRowNNZ    float64 `json:"avg_row_nnz"`
	RowCV        float64 `json:"row_cv"`
	RowSkew      float64 `json:"row_skew"`

	// Column-delta structure: intra-row column gaps bucketed by the
	// narrowest CSR-DU width class that holds them (u8/u16/u32/u64),
	// and the count of unit-stride gaps (delta == 1).
	DeltaHist [4]int64 `json:"delta_hist"`
	DeltaEq1  int64    `json:"delta_eq1"`

	// Value redundancy: distinct float64 values, distinct values after
	// float32 truncation, whether every value round-trips float32
	// losslessly, and the paper's ttu = nnz/unique indirection ratio.
	Unique     int     `json:"unique"`
	Unique32   int     `json:"unique32"`
	Lossless32 bool    `json:"lossless32"`
	TTU        float64 `json:"ttu"`

	// Bandwidth before and after RCM reordering (square matrices only;
	// -1 when not computed). A large drop means the matrix is banded in
	// disguise and reordering-based formats deserve a look.
	Bandwidth    int `json:"bandwidth"`
	BandwidthRCM int `json:"bandwidth_rcm"`

	// Symmetry: the fraction of off-diagonal entries whose transposed
	// counterpart exists with the same value (1e-12 relative tolerance,
	// matching sym.FromCOO), and whether the matrix is fully symmetric
	// (square, SymFrac == 1).
	SymFrac   float64 `json:"sym_frac"`
	Symmetric bool    `json:"symmetric"`

	// Diagonal/block structure: entries on the main diagonal, distinct
	// occupied diagonals (the CDS fill driver), and distinct occupied
	// 2x2 / 4x4 blocks (the exact BCSR padding drivers).
	DiagNNZ   int `json:"diag_nnz"`
	Diagonals int `json:"diagonals"`
	Blocks2   int `json:"blocks2"`
	Blocks4   int `json:"blocks4"`

	// Exact simulated CSR-DU control-stream sizes (default encoder
	// options, RLE off and on). These make the csr-du family's size
	// predictions exact rather than modeled.
	DUCtlBytes    int64 `json:"du_ctl_bytes"`
	DUCtlBytesRLE int64 `json:"du_ctl_bytes_rle"`

	// Approx marks features recovered from an already-built format
	// (ExtractFormat) where the triplet data was not available; only
	// the fields a FormatProfile exposes are populated.
	Approx bool `json:"approx,omitempty"`
}

// Extract computes the feature vector of a triplet matrix. The COO is
// finalized in place if needed. Cost is O(nnz) plus one RCM pass for
// square matrices.
func Extract(c *core.COO) Features { return extract(c, false) }

// extractLite computes the structural subset that drives per-region
// format choice, skipping the whole-matrix-only passes (transpose
// symmetry, RCM bandwidth) that would make per-block extraction
// quadratic-ish in practice.
func extractLite(c *core.COO) Features { return extract(c, true) }

func extract(c *core.COO, lite bool) Features {
	c.Finalize()
	ft := Features{Rows: c.Rows(), Cols: c.Cols(), NNZ: c.Len(), BandwidthRCM: -1}

	rowNNZ := make([]int64, c.Rows())
	uniq := make(map[uint64]struct{})
	uniq32 := make(map[uint32]struct{})
	blocks2 := make(map[uint64]struct{})
	blocks4 := make(map[uint64]struct{})
	diags := make(map[int]struct{})
	ft.Lossless32 = true
	bw := 0
	prevRow := -1
	prevCol := 0
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		rowNNZ[i]++
		bits := math.Float64bits(v)
		uniq[bits] = struct{}{}
		uniq32[math.Float32bits(float32(v))] = struct{}{}
		if !core.SameBits(v, float64(float32(v))) {
			ft.Lossless32 = false
		}
		blocks2[uint64(i/2)<<32|uint64(j/2)] = struct{}{}
		blocks4[uint64(i/4)<<32|uint64(j/4)] = struct{}{}
		diags[j-i] = struct{}{}
		if i == j {
			ft.DiagNNZ++
		}
		if d := j - i; d > bw {
			bw = d
		} else if -d > bw {
			bw = -d
		}
		if i == prevRow {
			d := uint64(j - prevCol)
			ft.DeltaHist[deltaClass(d)]++
			if d == 1 {
				ft.DeltaEq1++
			}
		}
		prevRow, prevCol = i, j
	}
	ft.Unique = len(uniq)
	ft.Unique32 = len(uniq32)
	ft.Blocks2 = len(blocks2)
	ft.Blocks4 = len(blocks4)
	ft.Diagonals = len(diags)
	ft.Bandwidth = bw
	if ft.Unique > 0 {
		ft.TTU = float64(ft.NNZ) / float64(ft.Unique)
	}

	var sumN, sumSq float64
	for _, n := range rowNNZ {
		if n > 0 {
			ft.NonEmptyRows++
		}
		if int(n) > ft.MaxRowNNZ {
			ft.MaxRowNNZ = int(n)
		}
		sumN += float64(n)
		sumSq += float64(n) * float64(n)
	}
	if c.Rows() > 0 {
		mean := sumN / float64(c.Rows())
		ft.AvgRowNNZ = mean
		if mean > 0 {
			variance := sumSq/float64(c.Rows()) - mean*mean
			if variance > 0 {
				ft.RowCV = math.Sqrt(variance) / mean
			}
			ft.RowSkew = float64(ft.MaxRowNNZ) / mean
		}
	}

	if !lite {
		ft.SymFrac, ft.Symmetric = symmetry(c)
		if c.Rows() == c.Cols() && c.Len() > 0 {
			if perm, err := reorder.RCM(c); err == nil {
				if pc, err := reorder.Permute(c, perm); err == nil {
					ft.BandwidthRCM = reorder.Bandwidth(pc)
				}
			}
		}
	}

	ft.DUCtlBytes = simulateDUCtl(c, csrdu.Options{})
	ft.DUCtlBytesRLE = simulateDUCtl(c, csrdu.Options{RLE: true})
	return ft
}

// symmetry returns the fraction of off-diagonal entries whose mirror
// entry exists with a matching value, and whether the whole matrix is
// numerically symmetric (the sym.FromCOO admission test).
func symmetry(c *core.COO) (frac float64, full bool) {
	if c.Rows() != c.Cols() {
		return 0, false
	}
	offDiag := c.Len() - diagCount(c)
	if offDiag == 0 {
		return 1, true
	}
	t := c.Transpose()
	matched := 0
	// Both sides are finalized, so a parallel merge walk finds mirrors.
	const tol = 1e-12
	for k, kt := 0, 0; k < c.Len() && kt < t.Len(); {
		i1, j1, v1 := c.At(k)
		i2, j2, v2 := t.At(kt)
		switch {
		case i1 < i2 || (i1 == i2 && j1 < j2):
			k++
		case i2 < i1 || (i1 == i2 && j2 < j1):
			kt++
		default:
			if i1 != j1 && math.Abs(v1-v2) <= tol*(1+math.Max(math.Abs(v1), math.Abs(v2))) {
				matched++
			}
			k++
			kt++
		}
	}
	frac = float64(matched) / float64(offDiag)
	return frac, matched == offDiag
}

// diagCount returns the number of entries on the main diagonal.
func diagCount(c *core.COO) int {
	n := 0
	for k := 0; k < c.Len(); k++ {
		i, j, _ := c.At(k)
		if i == j {
			n++
		}
	}
	return n
}

// simulateDUCtl replays the CSR-DU encoder's unit-splitting rules over
// the finalized COO counting control bytes only — no value or ctl
// allocation. The walk mirrors csrdu.encodeRow exactly (greedy class
// extension with MinSwitch widening, the 255-element unit cap, RLE run
// detection, NR/RJMP headers, varint jumps); features_test pins it
// byte-for-byte against the real encoder.
func simulateDUCtl(c *core.COO, opts csrdu.Options) int64 {
	if opts.RLEMin == 0 {
		opts.RLEMin = 6
	}
	if opts.MinSwitch == 0 {
		opts.MinSwitch = 4
	}
	var total int64
	cols := make([]int32, 0, 64)
	prevRow := -1
	n := c.Len()
	for k := 0; k < n; {
		i0, _, _ := c.At(k)
		cols = cols[:0]
		for k < n {
			i, j, _ := c.At(k)
			if i != i0 {
				break
			}
			cols = append(cols, int32(j))
			k++
		}
		total += simulateRow(i0, prevRow, cols, opts)
		prevRow = i0
	}
	return total
}

// simulateRow counts the ctl bytes one row's units would occupy.
func simulateRow(row, prevRow int, cols []int32, opts csrdu.Options) int64 {
	var bytes int64
	newRow := true
	prevCol := int32(0)
	unitHeader := func(ujmp uint64) {
		bytes += 2 // uflags + usize
		if newRow && row-prevRow > 1 {
			bytes += int64(varint.Len(uint64(row - prevRow)))
		}
		bytes += int64(varint.Len(ujmp))
	}
	t := 0
	for t < len(cols) {
		if opts.RLE {
			run := 1
			for t+run < len(cols) && run < 255 &&
				cols[t+run]-cols[t+run-1] == cols[t+1]-cols[t] {
				run++
			}
			if run >= opts.RLEMin {
				unitHeader(uint64(cols[t] - prevCol))
				bytes += int64(varint.Len(uint64(cols[t+1] - cols[t])))
				prevCol = cols[t+run-1]
				t += run
				newRow = false
				continue
			}
		}
		start := t
		cls := 0 // ClassU8
		t++
		for t < len(cols) && t-start < 255 {
			if opts.RLE {
				run := 1
				for t+run < len(cols) && run < 255 &&
					cols[t+run]-cols[t+run-1] == cols[t+1]-cols[t] {
					run++
				}
				if run >= opts.RLEMin {
					break
				}
			}
			cc := deltaClass(uint64(cols[t] - cols[t-1]))
			if cc > cls {
				if t-start >= opts.MinSwitch {
					break
				}
				cls = cc
			}
			t++
		}
		unitHeader(uint64(cols[start] - prevCol))
		bytes += int64(t-start-1) * int64(1<<cls)
		prevCol = cols[t-1]
		newRow = false
	}
	return bytes
}

// deltaClass mirrors csrdu's width classing: the narrowest class
// (0=u8 .. 3=u64) that holds d.
func deltaClass(d uint64) int {
	switch {
	case d < 1<<8:
		return 0
	case d < 1<<16:
		return 1
	case d < 1<<32:
		return 2
	default:
		return 3
	}
}

// ExtractFormat recovers an approximate feature vector from an
// already-built format via its structural profile, for callers that no
// longer hold the triplets (e.g. a pre-built matfile upload). Only the
// dimensions and the profile-visible compression features are
// populated; Approx is set so downstream consumers know the vector is
// partial.
func ExtractFormat(f core.Format) Features {
	ft := Features{
		Rows: f.Rows(), Cols: f.Cols(), NNZ: f.NNZ(),
		Approx: true, BandwidthRCM: -1,
	}
	p := prof.New(f)
	if p.VI != nil {
		ft.Unique = p.VI.UniqueValues
		ft.TTU = p.VI.TTU
	}
	if p.DU != nil {
		ft.DUCtlBytes = int64(p.DU.CtlBytes)
	}
	return ft
}
