package autotune

import (
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/matgen"
)

// shapes returns the structurally diverse test matrices the package
// tests share. Fresh instances every call: extraction finalizes in
// place and some callers mutate.
func shapes() map[string]*core.COO {
	return map[string]*core.COO{
		"banded":  matgen.Banded(rand.New(rand.NewSource(1)), 600, 8, 6, matgen.Values{}),
		"random":  matgen.RandomUniform(rand.New(rand.NewSource(2)), 500, 400, 7, matgen.Values{}),
		"skewed":  matgen.SkewedRows(rand.New(rand.NewSource(3)), 400, 4, 7, 0.4, matgen.Values{}),
		"blocks":  matgen.BlockDiag(rand.New(rand.NewSource(4)), 24, 12, matgen.Values{}),
		"stencil": matgen.Stencil2D(24),
		"fem":     matgen.FEMLike(rand.New(rand.NewSource(5)), 500, 9, matgen.Values{}),
		"quant":   matgen.Quantize(matgen.RandomUniform(rand.New(rand.NewSource(6)), 400, 400, 8, matgen.Values{}), rand.New(rand.NewSource(7)), 30),
	}
}

// TestSimulateDUCtlMatchesEncoder pins the size-only control-stream
// simulation byte-for-byte against the real CSR-DU encoder, RLE off
// and on. Any drift between the two makes the csr-du cost predictions
// silently wrong, so this is the load-bearing test of the extractor.
func TestSimulateDUCtlMatchesEncoder(t *testing.T) {
	for name, c := range shapes() {
		ft := Extract(c)
		plain, err := csrdu.FromCOOOpts(c, csrdu.Options{})
		if err != nil {
			t.Fatalf("%s: csrdu build: %v", name, err)
		}
		if got, want := ft.DUCtlBytes, int64(len(plain.Ctl)); got != want {
			t.Errorf("%s: simulated ctl %d bytes, encoder produced %d", name, got, want)
		}
		rle, err := csrdu.FromCOOOpts(c, csrdu.Options{RLE: true})
		if err != nil {
			t.Fatalf("%s: csrdu rle build: %v", name, err)
		}
		if got, want := ft.DUCtlBytesRLE, int64(len(rle.Ctl)); got != want {
			t.Errorf("%s: simulated rle ctl %d bytes, encoder produced %d", name, got, want)
		}
	}
}

func TestExtractStructure(t *testing.T) {
	// A hand matrix with known structure: 4x4, symmetric tridiagonal
	// with constant off-diagonal values.
	c := core.NewCOO(4, 4)
	for i := 0; i < 4; i++ {
		c.Add(i, i, 2)
		if i+1 < 4 {
			c.Add(i, i+1, -1)
			c.Add(i+1, i, -1)
		}
	}
	c.Finalize()
	ft := Extract(c)
	if ft.Rows != 4 || ft.Cols != 4 || ft.NNZ != 10 {
		t.Fatalf("dims: %+v", ft)
	}
	if !ft.Symmetric || ft.SymFrac != 1 {
		t.Errorf("symmetric tridiagonal not detected: frac=%v full=%v", ft.SymFrac, ft.Symmetric)
	}
	if ft.Unique != 2 {
		t.Errorf("unique = %d, want 2", ft.Unique)
	}
	if !ft.Lossless32 {
		t.Errorf("integer-valued matrix should be float32-lossless")
	}
	if ft.DiagNNZ != 4 {
		t.Errorf("diag nnz = %d, want 4", ft.DiagNNZ)
	}
	if ft.Diagonals != 3 {
		t.Errorf("diagonals = %d, want 3", ft.Diagonals)
	}
	if ft.Bandwidth != 1 {
		t.Errorf("bandwidth = %d, want 1", ft.Bandwidth)
	}
	if ft.MaxRowNNZ != 3 {
		t.Errorf("max row nnz = %d, want 3", ft.MaxRowNNZ)
	}
}

func TestExtractSkewFeatures(t *testing.T) {
	c := matgen.SkewedRows(rand.New(rand.NewSource(11)), 400, 4, 7, 0.4, matgen.Values{})
	ft := Extract(c)
	if ft.RowSkew <= 4 {
		t.Errorf("skewed generator should trip the skew threshold, got %v", ft.RowSkew)
	}
}
