package autotune

import (
	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/formats"
	"spmv/internal/hybrid"
)

// regionFormats are the candidate formats for one hybrid row block, in
// deterministic preference order for ties. Whole-matrix-only schemes
// (sym-csr, csc, hybrid itself) and lossy csr32 are excluded.
var regionFormats = []string{
	"csr", "csr16", "csr-du", "csr-du-rle", "csr-vi", "csr-du-vi",
	"bcsr2x2", "bcsr4x4", "ell", "cds",
}

// BuildHybrid builds a hybrid matrix whose per-region formats are
// chosen by the analytic cost model instead of the registry's fixed
// build-all-and-compare heuristic: each row block gets the format the
// model predicts smallest for that block's own features.
func BuildHybrid(c *core.COO) (*hybrid.Matrix, error) {
	return hybrid.FromCOOSelect(c, hybrid.DefaultBlockRows, RegionSelector())
}

// RegionSelector returns the autotuned per-region format selector: it
// extracts the block's features (the cheap structural subset — no RCM
// or symmetry pass, which only inform whole-matrix choices) and builds
// the predicted-smallest feasible format. A block whose winning format
// unexpectedly fails to build falls back to CSR rather than failing
// the whole matrix.
func RegionSelector() hybrid.Selector {
	return func(sub *core.COO) (core.Format, error) {
		ft := extractLite(sub)
		bestName := "csr"
		var bestBytes int64 = -1
		for _, name := range regionFormats {
			bytes, exact, feasible, _ := PredictBytes(ft, formats.Spec{Format: name})
			if !feasible || !exact {
				continue
			}
			if bestBytes < 0 || bytes < bestBytes {
				bestBytes = bytes
				bestName = name
			}
		}
		f, err := formats.Build(bestName, sub)
		if err != nil && bestName != "csr" {
			return csr.FromCOO(sub)
		}
		return f, err
	}
}
