package autotune

import (
	"spmv/internal/cds"
	"spmv/internal/core"
	"spmv/internal/ell"
	"spmv/internal/formats"
)

// Candidate is one (format, encoder options, scheduler hints) combo
// with its analytic prediction and final ranking score.
type Candidate struct {
	Spec formats.Spec `json:"spec"`
	// PredBytes is the predicted bytes-per-SpMV under the traffic
	// model: matrix working set plus the x/y vectors.
	PredBytes int64 `json:"pred_bytes"`
	// Exact marks predictions derived from exact size formulas (or the
	// simulated DU control stream) rather than estimates.
	Exact bool `json:"exact"`
	// Feasible is false when the format cannot represent the matrix
	// (csr16 with wide columns, csr32 with lossy values, sym-csr on an
	// asymmetric matrix, ell/cds past their fill bounds); Reason says
	// why.
	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`
	// PriorGBps and PriorSignificant report the archive prior applied
	// to this candidate (0 / false when no significant prior matched).
	PriorGBps        float64 `json:"prior_gbps,omitempty"`
	PriorSignificant bool    `json:"prior_significant,omitempty"`
	// Score is the ranking key, lower is better: predicted bytes
	// divided by the prior bandwidth ratio when a significant prior
	// exists, plain predicted bytes otherwise. With a roofline model
	// (Options.Roofline) the score is further divided by the ceiling
	// bytes/second, turning it into predicted seconds — the same units
	// as ProbeSecs, and a monotonic transform that leaves the analytic
	// ranking unchanged.
	Score float64 `json:"score"`
	// PredSecs is the roofline floor for this candidate: PredBytes
	// moved at the model's ceiling bandwidth. 0 when tuning ran without
	// a roofline model. Comparing ProbeSecs against it says how far the
	// measured run sat from the memory wall.
	PredSecs float64 `json:"pred_secs,omitempty"`
	// Probed marks candidates the measurement stage timed; ProbeSecs /
	// ProbeStddev / ProbeSampleN summarize the seconds-per-iteration
	// samples and ProbeBytes is the built format's actual traffic.
	Probed       bool    `json:"probed,omitempty"`
	ProbeSecs    float64 `json:"probe_secs,omitempty"`
	ProbeStddev  float64 `json:"probe_stddev,omitempty"`
	ProbeSampleN int     `json:"probe_samples,omitempty"`
	ProbeBytes   int64   `json:"probe_bytes,omitempty"`
}

// Candidates returns the default candidate list for a matrix with the
// given features, in a fixed deterministic order. Formats that cannot
// run under the row-parallel executors (jds) are omitted; formats with
// hard applicability constraints are included but marked infeasible so
// the report shows why they were not considered. Scheduler hints are
// derived from the row-distribution features: heavy skew routes row
// formats to nnz partitioning with work stealing as the probe
// alternative.
func Candidates(ft Features) []Candidate {
	skewed := ft.RowSkew > 4 || ft.RowCV > 1
	rowHint := func(s formats.Spec) formats.Spec {
		if skewed {
			s.Partition = "nnz"
			s.Steal = false
		}
		return s
	}
	specs := []formats.Spec{
		rowHint(formats.Spec{Format: "csr"}),
		rowHint(formats.Spec{Format: "csr16"}),
		{Format: "csr32"},
		rowHint(formats.Spec{Format: "csr-du"}),
		rowHint(formats.Spec{Format: "csr-du-rle"}),
		rowHint(formats.Spec{Format: "csr-vi"}),
		rowHint(formats.Spec{Format: "csr-du-vi"}),
		{Format: "dcsr"},
		{Format: "csc", Partition: "col"},
		{Format: "bcsr2x2"},
		{Format: "bcsr4x4"},
		{Format: "ell"},
		{Format: "cds"},
		{Format: "vbr"},
		{Format: "sym-csr"},
		{Format: "hybrid"},
	}
	// The skewed-row probe alternative: plain csr under the stealing
	// scheduler, so the probe stage can arbitrate nnz-split vs steal.
	if skewed {
		specs = append(specs, formats.Spec{Format: "csr", Steal: true})
	}
	out := make([]Candidate, 0, len(specs))
	for _, s := range specs {
		c := Candidate{Spec: s}
		c.PredBytes, c.Exact, c.Feasible, c.Reason = PredictBytes(ft, s)
		c.Score = float64(c.PredBytes)
		out = append(out, c)
	}
	return out
}

// PredictBytes predicts the bytes-per-SpMV of building ft's matrix in
// the given spec: the format's storage bytes (exact closed forms where
// the registry formats define them, the simulated control stream for
// the CSR-DU family, conservative estimates for dcsr/vbr) plus the
// §II-B vector traffic. The second result reports whether the formula
// is exact; the last two report feasibility.
func PredictBytes(ft Features, s formats.Spec) (bytes int64, exact, feasible bool, reason string) {
	rows, cols, nnz := int64(ft.Rows), int64(ft.Cols), int64(ft.NNZ)
	vec := core.VectorBytes(ft.Rows, ft.Cols, core.ValSize)
	viW := func(unique int) int64 {
		switch {
		case unique <= 1<<8:
			return 1
		case unique <= 1<<16:
			return 2
		default:
			return 4
		}
	}
	exact, feasible = true, true
	switch s.Name() {
	case "csr":
		bytes = (rows+1)*core.IdxSize + nnz*(core.IdxSize+core.ValSize)
	case "csr16":
		if ft.Cols > 1<<16 {
			return 0, true, false, "columns exceed 16-bit index range"
		}
		bytes = (rows+1)*core.IdxSize + nnz*(2+core.ValSize)
	case "csr32":
		if !ft.Lossless32 {
			return 0, true, false, "values do not round-trip float32"
		}
		bytes = (rows+1)*core.IdxSize + nnz*(core.IdxSize+4)
	case "csr-du":
		bytes = ft.DUCtlBytes + nnz*core.ValSize
	case "csr-du-rle":
		bytes = ft.DUCtlBytesRLE + nnz*core.ValSize
	case "csr-vi":
		w := viW(ft.Unique)
		bytes = (rows+1)*core.IdxSize + nnz*core.IdxSize + nnz*w + int64(ft.Unique)*core.ValSize
	case "csr-du-vi":
		w := viW(ft.Unique)
		bytes = ft.DUCtlBytes + nnz*w + int64(ft.Unique)*core.ValSize
	case "dcsr":
		// The dcsr command stream interleaves row jumps with the same
		// delta classes; its size tracks the DU control stream closely.
		// Estimated: never undercuts csr-du, which precedes it in the
		// candidate order.
		bytes = ft.DUCtlBytes + nnz*core.ValSize + int64(ft.NonEmptyRows)
		exact = false
	case "csc":
		bytes = nnz*(core.IdxSize+core.ValSize) + (cols+1)*core.IdxSize
	case "bcsr2x2":
		b := int64(ft.Blocks2)
		bytes = ((rows+1)/2+1)*core.IdxSize + b*core.IdxSize + b*4*core.ValSize
	case "bcsr4x4":
		b := int64(ft.Blocks4)
		bytes = ((rows+3)/4+1)*core.IdxSize + b*core.IdxSize + b*16*core.ValSize
	case "ell":
		if nnz > 0 && float64(ft.MaxRowNNZ)*float64(rows) > ell.DefaultMaxFill*float64(nnz) {
			return 0, true, false, "padding exceeds ELLPACK fill bound"
		}
		bytes = rows * int64(ft.MaxRowNNZ) * (core.IdxSize + core.ValSize)
	case "jds":
		bytes = nnz*(core.IdxSize+core.ValSize) + int64(ft.MaxRowNNZ+1)*core.IdxSize + rows*core.IdxSize
	case "cds":
		if nnz > 0 && float64(ft.Diagonals)*float64(rows) > cds.DefaultMaxFill*float64(nnz) {
			return 0, true, false, "diagonal fill exceeds CDS bound"
		}
		bytes = int64(ft.Diagonals)*rows*core.ValSize + int64(ft.Diagonals)*core.IdxSize
	case "vbr":
		// Auto-partitioned VBR depends on the discovered partition;
		// estimate as CSR plus the partition arrays so it only wins
		// when measured.
		bytes = (rows+1)*core.IdxSize + nnz*(core.IdxSize+core.ValSize) + (rows+cols)*core.IdxSize / 8
		exact = false
	case "sym-csr":
		if !ft.Symmetric {
			return 0, true, false, "matrix not numerically symmetric"
		}
		off := (nnz - int64(ft.DiagNNZ)) / 2
		bytes = rows*core.ValSize + off*(core.IdxSize+core.ValSize) + (rows+1)*core.IdxSize
	case "hybrid":
		// Per-region selection can at best match the best whole-matrix
		// choice among its sub-formats (csr, csr-du, cds) on uniform
		// matrices; predict that floor. Concrete formats precede hybrid
		// in the candidate order, so ties resolve to them.
		duvi := ft.DUCtlBytes + nnz*core.ValSize
		csrB := (rows+1)*core.IdxSize + nnz*(core.IdxSize+core.ValSize)
		bytes = csrB
		if duvi < bytes {
			bytes = duvi
		}
		if nnz > 0 && float64(ft.Diagonals)*float64(rows) <= cds.DefaultMaxFill*float64(nnz) {
			if cdsB := int64(ft.Diagonals)*rows*core.ValSize + int64(ft.Diagonals)*core.IdxSize; cdsB < bytes {
				bytes = cdsB
			}
		}
		exact = false
	default:
		return 0, false, false, "format not modeled"
	}
	return bytes + vec, exact, feasible, ""
}
