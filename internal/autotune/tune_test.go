package autotune

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/matgen"
	"spmv/internal/prof/archive"
	"spmv/internal/roofline"
)

// rec builds a synthetic archive cell with enough samples and spread
// for the Welch path.
func rec(matrix, format string, threads int, mean, stddev float64, gbps float64) archive.Record {
	return archive.Record{
		Name: archive.CellName(matrix, format, threads), Matrix: matrix,
		Format: format, Threads: threads, Iters: 10, Samples: 5,
		MeanSecs: mean, StddevSecs: stddev, BytesPerIter: 1 << 20, GBps: gbps,
	}
}

func TestPriorsBlendScores(t *testing.T) {
	// csr-du measured 2x the bandwidth of csr on this host, clearly
	// outside noise; csr-vi measured indistinguishable from csr.
	recs := []archive.Record{
		rec("m1", "csr", 2, 1.0e-3, 1e-5, 10),
		rec("m1", "csr-du", 2, 0.5e-3, 1e-5, 20),
		rec("m1", "csr-vi", 2, 1.0e-3, 1e-4, 10.01),
	}
	priors := loadPriors(recs, 2)
	if p, ok := priors["csr-du"]; !ok || !p.Significant {
		t.Fatalf("csr-du prior not significant: %+v", priors)
	}
	if p, ok := priors["csr-vi"]; ok && p.Significant {
		t.Fatalf("csr-vi prior should not be significant: %+v", p)
	}

	cands := []Candidate{
		{Spec: formats.Spec{Format: "csr-du"}, PredBytes: 1000, Feasible: true, Score: 1000},
		{Spec: formats.Spec{Format: "csr-vi"}, PredBytes: 900, Feasible: true, Score: 900},
	}
	applyPriors(cands, priors)
	if !cands[0].PriorSignificant || cands[0].Score >= 1000 {
		t.Errorf("significant 2x prior should halve csr-du's score: %+v", cands[0])
	}
	if cands[1].PriorSignificant || cands[1].Score != 900 {
		t.Errorf("insignificant prior must leave csr-vi untouched: %+v", cands[1])
	}
	// The blend flips the order: measured bandwidth outweighs the 10%
	// analytic size edge.
	rank(cands)
	if cands[0].Spec.Name() != "csr-du" {
		t.Errorf("prior-blended ranking should prefer csr-du, got %q", cands[0].Spec.Name())
	}
}

func TestPriorsMissingArchiveIsClean(t *testing.T) {
	c := matgen.Stencil2D(16)
	rep, err := Tune(c, Options{Threads: 1, ArchivePath: filepath.Join(t.TempDir(), "BENCH_none.json")})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if rep.ArchiveNote != "" || rep.PriorsUsed {
		t.Errorf("missing archive should be silent: note=%q priors=%v", rep.ArchiveNote, rep.PriorsUsed)
	}
}

// TestProbeRefinement runs the measured stage end to end: the report
// carries probe timings, the winner is never Welch-significantly
// slower than the plain-CSR baseline, and the results land in the
// archive for the next run to use as priors.
func TestProbeRefinement(t *testing.T) {
	c := matgen.RandomUniform(rand.New(rand.NewSource(31)), 600, 600, 8, matgen.Values{})
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	rep, err := Tune(c, Options{
		Threads: 2, Budget: 300 * time.Millisecond, TopK: 2,
		ArchivePath: path, MatrixName: "probe-test",
	})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if !rep.Probed || rep.ProbeIters < 1 {
		t.Fatalf("probe stage did not run: %+v", rep)
	}
	if !rep.Candidates[0].Probed {
		t.Errorf("winner was not probed")
	}
	if rep.VsCSR != nil && rep.VsCSR.Significant && rep.VsCSR.Delta > 0 {
		t.Errorf("probe-refined winner is Welch-significantly slower than csr: %+v", rep.VsCSR)
	}
	if rep.ArchiveNote != "" {
		t.Fatalf("archive write failed: %s", rep.ArchiveNote)
	}
	f, err := archive.Load(path)
	if err != nil {
		t.Fatalf("recorded archive: %v", err)
	}
	foundCSR := false
	for _, r := range f.Records {
		if r.Matrix != "probe-test" || r.Samples < 2 || r.MeanSecs <= 0 {
			t.Errorf("malformed probe record: %+v", r)
		}
		if r.Format == "csr" {
			foundCSR = true
		}
	}
	if len(f.Records) < 2 || !foundCSR {
		t.Errorf("expected >= 2 probe records including the csr baseline, got %+v", f.Records)
	}
}

// TestBuildHybridSelectsPerRegion exercises the autotuned hybrid on a
// matrix whose halves want different formats: a banded top and a
// quantized random bottom. The build must verify and multiply exactly
// like the reference.
func TestBuildHybridSelectsPerRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 600
	c := core.NewCOO(n, n)
	banded := matgen.Banded(rng, n/2, 4, 5, matgen.Values{})
	for k := 0; k < banded.Len(); k++ {
		i, j, v := banded.At(k)
		c.Add(i, j, v)
	}
	randPart := matgen.Quantize(
		matgen.RandomUniform(rng, n/2, n, 7, matgen.Values{}), rng, 12)
	for k := 0; k < randPart.Len(); k++ {
		i, j, v := randPart.At(k)
		c.Add(i+n/2, j, v)
	}
	c.Finalize()

	m, err := BuildHybrid(c)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	got := make([]float64, n)
	m.SpMV(got, x)
	want := make([]float64, n)
	c.SpMV(want, x)
	for i := range want {
		if !core.SameBits(got[i], want[i]) && !closeEnough(got[i], want[i]) {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	} else if -b > m {
		m = -b
	}
	return d <= 1e-9*(1+m)
}

// TestSymmetricMatrixPicksSymCSR pins the symmetry feature's payoff:
// on a numerically symmetric matrix with incompressible values, the
// halved off-diagonal storage wins.
func TestSymmetricMatrixPicksSymCSR(t *testing.T) {
	c := matgen.Symmetrize(matgen.RandomUniform(rand.New(rand.NewSource(51)), 800, 800, 9, matgen.Values{}))
	rep, err := Tune(c, Options{Threads: 2})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if rep.Chosen.Name() != "sym-csr" {
		best := rep.Candidates[0]
		t.Errorf("symmetric matrix chose %q (pred %d); sym-csr should win", best.Spec.Name(), best.PredBytes)
	}
}

// specKey renders a Spec as a comparable ranking identity.
func specKey(s formats.Spec) string {
	return fmt.Sprintf("%s/%s/steal=%v", s.Name(), s.Partition, s.Steal)
}

// TestRooflinePriorKeepsRankingMonotonic pins that a roofline model
// restates scores as predicted seconds without changing the analytic
// ranking: same ordering, Score == PredSecs (prior-free), and the
// report carries the ceiling it normalized by.
func TestRooflinePriorKeepsRankingMonotonic(t *testing.T) {
	c := matgen.RandomUniform(rand.New(rand.NewSource(7)), 600, 600, 8, matgen.Values{})
	plain, err := Tune(c, Options{Threads: 2})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	m := &roofline.Model{Source: roofline.SourceProbe, Host: "t", Ceilings: map[int]float64{2: 10}}
	roofed, err := Tune(c, Options{Threads: 2, Roofline: m})
	if err != nil {
		t.Fatalf("roofed: %v", err)
	}
	if roofed.CeilingGBps != 10 || roofed.RooflineSource != roofline.SourceProbe {
		t.Fatalf("report ceiling %v source %q", roofed.CeilingGBps, roofed.RooflineSource)
	}
	if specKey(roofed.Chosen) != specKey(plain.Chosen) {
		t.Fatalf("roofline prior changed the winner: %q vs %q", specKey(roofed.Chosen), specKey(plain.Chosen))
	}
	if len(roofed.Candidates) != len(plain.Candidates) {
		t.Fatalf("candidate counts differ")
	}
	for i := range roofed.Candidates {
		rc, pc := roofed.Candidates[i], plain.Candidates[i]
		if specKey(rc.Spec) != specKey(pc.Spec) {
			t.Fatalf("rank %d differs: %q vs %q", i, specKey(rc.Spec), specKey(pc.Spec))
		}
		if !rc.Feasible {
			continue
		}
		wantSecs := float64(rc.PredBytes) / 1e10
		if diff := rc.PredSecs - wantSecs; diff > 1e-15 || diff < -1e-15 {
			t.Errorf("%s: PredSecs %v, want %v", specKey(rc.Spec), rc.PredSecs, wantSecs)
		}
		if diff := rc.Score - wantSecs; diff > 1e-15 || diff < -1e-15 {
			t.Errorf("%s: Score %v not restated as seconds %v", specKey(rc.Spec), rc.Score, wantSecs)
		}
	}
}
