package autotune

import (
	"errors"
	"fmt"
	"io/fs"
	"time"

	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/obs"
	"spmv/internal/parallel"
	"spmv/internal/prof/archive"
	"spmv/internal/stats"
)

// probeSamples is how many repeated measurements each probed candidate
// gets (budget permitting); >= 2 so the Welch comparator has spread to
// work with.
const probeSamples = 3

// probe short-benches the leading candidates within opts.Budget and
// re-ranks by measured time. A plain-CSR baseline is always probed
// alongside the analytic leaders, so the winner is never a combo that
// measured slower than CSR: an unprobed candidate cannot outrank a
// probed one, and among probed ones the fastest mean wins.
func probe(c *core.COO, rep *Report, opts Options) error {
	deadline := time.Now().Add(opts.Budget)
	iters := proberIters(c.Len())
	rep.Probed = true
	rep.ProbeIters = iters

	baseline := baselineIndex(rep)

	probed := 0
	for i := range rep.Candidates {
		cand := &rep.Candidates[i]
		if !cand.Feasible {
			continue
		}
		if probed >= opts.TopK && i != baseline {
			continue
		}
		if probed > 0 && i != baseline && time.Now().After(deadline) {
			continue // budget spent: only the baseline still gets its turn
		}
		if err := probeOne(c, cand, iters, opts.Threads, deadline); err != nil {
			// A candidate that fails to build or execute drops out of
			// contention; that is a ranking outcome, not a tuning error.
			cand.Feasible = false
			cand.Reason = "probe: " + err.Error()
			continue
		}
		probed++
	}
	if probed == 0 {
		return fmt.Errorf("no candidate survived probing")
	}

	// Snapshot the baseline's record before re-ranking moves indices.
	var csrRec *archive.Record
	if baseline >= 0 && rep.Candidates[baseline].Probed {
		r := probeRecord(rep.Candidates[baseline], opts, c)
		csrRec = &r
	}

	rank(rep.Candidates)

	if csrRec != nil && !isPlainCSR(rep.Candidates[0].Spec) {
		winRec := probeRecord(rep.Candidates[0], opts, c)
		winRec.Name = csrRec.Name
		winRec.Scale = csrRec.Scale
		if res, err := archive.Compare(
			[]archive.Record{*csrRec}, []archive.Record{winRec}, archive.Options{}); err == nil && len(res) == 1 {
			rep.VsCSR = &res[0]
		}
	}

	if opts.ArchivePath != "" {
		if err := appendArchive(c, rep, opts); err != nil {
			rep.ArchiveNote = err.Error()
		}
	}
	return nil
}

// isPlainCSR reports whether the spec is unhinted baseline CSR.
func isPlainCSR(s formats.Spec) bool {
	return s.Name() == "csr" && s.Partition == "" && !s.Steal
}

// baselineIndex locates — appending if absent — the plain-CSR baseline
// candidate every probe run measures.
func baselineIndex(rep *Report) int {
	for i, cand := range rep.Candidates {
		if isPlainCSR(cand.Spec) && cand.Feasible {
			return i
		}
	}
	base := Candidate{Spec: formats.Spec{Format: "csr"}}
	base.PredBytes, base.Exact, base.Feasible, base.Reason = PredictBytes(rep.Features, base.Spec)
	base.Score = float64(base.PredBytes)
	rep.Candidates = append(rep.Candidates, base)
	return len(rep.Candidates) - 1
}

// proberIters sizes the per-sample iteration count so one sample does
// a few million non-zero multiplies: enough to swamp dispatch
// overhead, small enough to fit several samples in a sub-second
// budget.
func proberIters(nnz int) int {
	if nnz <= 0 {
		return 1
	}
	iters := int(4_000_000 / int64(nnz))
	if iters < 1 {
		return 1
	}
	if iters > 50 {
		return 50
	}
	return iters
}

// probeOne builds and measures one candidate in place: cand.ProbeSecs
// becomes the mean seconds per iteration, with the sample spread kept
// for the Welch comparison and archive recording.
func probeOne(c *core.COO, cand *Candidate, iters, threads int, deadline time.Time) error {
	f, err := Build(c, cand.Spec)
	if err != nil {
		return err
	}
	run, err := newRunner(f, cand.Spec, threads)
	if err != nil {
		return err
	}
	defer run.Close()

	x := make([]float64, f.Cols())
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, f.Rows())
	// One untimed warm pass faults pages and spins the workers up.
	if err := run.RunIters(1, y, x); err != nil {
		return err
	}
	samples := make([]float64, 0, probeSamples)
	for s := 0; s < probeSamples; s++ {
		t0 := time.Now()
		if err := run.RunIters(iters, y, x); err != nil {
			return err
		}
		samples = append(samples, time.Since(t0).Seconds()/float64(iters))
		if len(samples) >= 2 && time.Now().After(deadline) {
			break // budget spent; two samples keep the t-test honest
		}
	}
	mean, stddev := stats.MeanStddev(samples)
	cand.Probed = true
	cand.ProbeSecs = mean
	cand.ProbeStddev = stddev
	cand.ProbeSampleN = len(samples)
	cand.ProbeBytes = obs.BytesPerSpMV(f)
	return nil
}

// newRunner builds the executor a spec's scheduler hints call for,
// falling back to the default row scheme when the format does not
// support the hinted partition.
func newRunner(f core.Format, s formats.Spec, threads int) (parallel.Runner, error) {
	if s.Name() == "sym-csr" {
		return parallel.NewSymExecutor(f, threads)
	}
	run, err := parallel.New(f, parallel.ExecOptions{
		Threads: threads, Partition: s.Partition, Steal: s.Steal,
	})
	if err != nil && (s.Partition != "" || s.Steal) {
		run, err = parallel.New(f, parallel.ExecOptions{Threads: threads})
	}
	return run, err
}

// probeRecord summarizes a probed candidate as an archive record.
func probeRecord(cand Candidate, opts Options, c *core.COO) archive.Record {
	name := opts.MatrixName
	if name == "" {
		name = fmt.Sprintf("tune-%dx%d-nnz%d", c.Rows(), c.Cols(), c.Len())
	}
	fname := cand.Spec.Name()
	rec := archive.Record{
		Name:         archive.CellName(name, fname, opts.Threads),
		Matrix:       name,
		Format:       fname,
		Threads:      opts.Threads,
		Iters:        proberIters(c.Len()),
		Samples:      cand.ProbeSampleN,
		MeanSecs:     cand.ProbeSecs,
		StddevSecs:   cand.ProbeStddev,
		BytesPerIter: cand.ProbeBytes,
	}
	if cand.ProbeSecs > 0 {
		rec.GBps = obs.GBps(cand.ProbeBytes, cand.ProbeSecs)
	}
	return rec
}

// appendArchive records every probed candidate back into the benchmark
// archive so later tunes (and bench comparisons) see the measurements
// as priors. Same-name cells are replaced, everything else preserved.
func appendArchive(c *core.COO, rep *Report, opts Options) error {
	f, err := archive.Load(opts.ArchivePath)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		f = &archive.File{Schema: archive.Schema}
	}
	fresh := make(map[string]archive.Record)
	for _, cand := range rep.Candidates {
		if !cand.Probed {
			continue
		}
		rec := probeRecord(cand, opts, c)
		fresh[rec.Name] = rec
	}
	kept := f.Records[:0]
	for _, r := range f.Records {
		if _, replaced := fresh[r.Name]; !replaced {
			kept = append(kept, r)
		}
	}
	f.Records = kept
	for _, rec := range fresh {
		f.Records = append(f.Records, rec)
	}
	return archive.Write(opts.ArchivePath, f)
}
