package autotune

import (
	"sort"

	"spmv/internal/prof/archive"
)

// prior is a per-format measured-bandwidth summary derived from the
// host's benchmark archive.
type prior struct {
	// GBps and CSRGBps are mean effective bandwidths across matrices
	// where both this format and csr were measured at the same thread
	// count.
	GBps    float64
	CSRGBps float64
	// Significant is true when at least one matched (matrix, threads)
	// cell shows a Welch-significant timing difference between the
	// format and csr — the bar a prior must clear before it is allowed
	// to reorder the analytic ranking.
	Significant bool
}

// loadPriors summarizes archive records into per-format priors at the
// given thread count. Records are matched per (matrix, threads) cell
// against the same cell's csr measurement; the Welch comparator (via
// archive.Compare on the synthesized pair) decides significance.
func loadPriors(recs []archive.Record, threads int) map[string]prior {
	type cell struct{ matrix string }
	csrBy := make(map[cell]archive.Record)
	for _, r := range recs {
		if r.Format == "csr" && r.Threads == threads {
			csrBy[cell{r.Matrix}] = r
		}
	}
	sums := make(map[string]*prior)
	names := make([]string, 0)
	for _, r := range recs {
		if r.Threads != threads || r.Format == "csr" || r.GBps <= 0 {
			continue
		}
		base, ok := csrBy[cell{r.Matrix}]
		if !ok || base.GBps <= 0 {
			continue
		}
		p := sums[r.Format]
		if p == nil {
			p = &prior{}
			sums[r.Format] = p
			names = append(names, r.Format)
		}
		// Average ratios by accumulating both sides; one significant
		// matched cell qualifies the whole prior.
		p.GBps += r.GBps
		p.CSRGBps += base.GBps
		if welchSignificant(base, r) {
			p.Significant = true
		}
	}
	sort.Strings(names)
	out := make(map[string]prior, len(sums))
	for _, n := range names {
		out[n] = *sums[n]
	}
	return out
}

// welchSignificant reports whether the two cells' timings are
// statistically distinguishable, reusing the archive comparator by
// aligning the records onto one synthetic cell name.
func welchSignificant(a, b archive.Record) bool {
	a.Name, b.Name = "cell", "cell"
	b.Scale = a.Scale // Compare refuses scale mismatches; timings at the
	// recorded scales are still the host's own numbers.
	res, err := archive.Compare([]archive.Record{a}, []archive.Record{b}, archive.Options{})
	if err != nil || len(res) != 1 {
		return false
	}
	return res[0].Significant
}

// applyPriors blends archive priors into candidate scores: a format
// with a significant measured bandwidth ratio r against csr has its
// predicted bytes divided by r, so a format that historically moves
// bytes faster (or slower) than csr on this host is credited (or
// penalized) proportionally. Candidates without a significant prior
// keep their analytic score untouched.
func applyPriors(cands []Candidate, priors map[string]prior) {
	for i := range cands {
		c := &cands[i]
		p, ok := priors[c.Spec.Name()]
		if !ok || !p.Significant || p.GBps <= 0 || p.CSRGBps <= 0 {
			continue
		}
		ratio := p.GBps / p.CSRGBps
		c.PriorGBps = p.GBps
		c.PriorSignificant = true
		c.Score = float64(c.PredBytes) / ratio
	}
}
