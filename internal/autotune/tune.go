package autotune

import (
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"sort"
	"time"

	"spmv/internal/core"
	"spmv/internal/formats"
	"spmv/internal/prof/archive"
	"spmv/internal/roofline"
)

// Options configure Tune. The zero value runs the deterministic
// analytic ranking only.
type Options struct {
	// Threads is the executor thread count the tuning targets (probe
	// runs and archive-prior matching use it); 0 means GOMAXPROCS.
	Threads int
	// Budget bounds the measured-probe refinement stage; 0 skips
	// probing and the ranking stays purely analytic (and bit-stable).
	Budget time.Duration
	// TopK is how many leading candidates the probe stage measures
	// (plain CSR is always probed as the baseline); 0 means 3.
	TopK int
	// ArchivePath, when set, names the BENCH_<host>.json file used two
	// ways: significant measured priors from it re-weight the analytic
	// ranking, and probe results are recorded back into it.
	ArchivePath string
	// MatrixName keys probe records in the archive; empty derives a
	// name from the matrix dimensions.
	MatrixName string
	// Candidates overrides the default candidate list (rarely needed
	// outside tests).
	Candidates []Candidate
	// Roofline, when non-nil, is the host bandwidth model used as a
	// prior: every candidate's score is divided by the ceiling
	// bytes/second at Threads, restating it as predicted seconds
	// (Candidate.PredSecs) directly comparable with probe timings. A
	// constant divisor per run, so the analytic ranking is unchanged.
	Roofline *roofline.Model
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.TopK <= 0 {
		o.TopK = 3
	}
	return o
}

// Report is the serializable decision trace of one tuning run: the
// extracted features, every candidate with its prediction and score
// (ranked, best first), the chosen combo, and — when the probe stage
// ran — the measured timings and the Welch comparison of the winner
// against plain CSR.
type Report struct {
	Features Features `json:"features"`
	// Candidates are ranked best-first: feasible before infeasible,
	// then ascending score (probe timings override the analytic order
	// for probed candidates).
	Candidates []Candidate `json:"candidates"`
	// Chosen is the winning spec; ChosenPredBytes its analytic
	// bytes-per-SpMV prediction.
	Chosen          formats.Spec `json:"chosen"`
	ChosenPredBytes int64        `json:"chosen_pred_bytes"`
	// PriorsUsed reports whether any significant archive prior
	// re-weighted the ranking.
	PriorsUsed bool `json:"priors_used,omitempty"`
	// Probed reports whether the measurement stage ran; ProbeIters is
	// the per-sample iteration count it used.
	Probed     bool `json:"probed,omitempty"`
	ProbeIters int  `json:"probe_iters,omitempty"`
	// VsCSR is the statistical comparison of the chosen combo's probe
	// timing against the plain-CSR probe (probe runs only).
	VsCSR *archive.Result `json:"vs_csr,omitempty"`
	// ArchiveNote records a non-fatal problem loading or writing the
	// benchmark archive ("" when clean).
	ArchiveNote string `json:"archive_note,omitempty"`
	// CeilingGBps and RooflineSource record the bandwidth prior the
	// scores were normalized by (0 / "" without Options.Roofline).
	CeilingGBps    float64 `json:"ceiling_gbps,omitempty"`
	RooflineSource string  `json:"roofline_source,omitempty"`
}

// Tune extracts features, ranks candidates, and (within Options.Budget)
// probes the leaders. The returned report always has at least one
// feasible candidate — plain CSR ranks even when nothing else does.
func Tune(c *core.COO, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	ft := Extract(c)
	return tuneFeatures(c, ft, opts)
}

// tuneFeatures is Tune past feature extraction, shared with callers
// that already hold the features.
func tuneFeatures(c *core.COO, ft Features, opts Options) (*Report, error) {
	rep := &Report{Features: ft}
	cands := opts.Candidates
	if cands == nil {
		cands = Candidates(ft)
	}
	rep.Candidates = make([]Candidate, len(cands))
	copy(rep.Candidates, cands)

	if opts.ArchivePath != "" {
		if f, err := archive.Load(opts.ArchivePath); err == nil {
			priors := loadPriors(f.Records, opts.Threads)
			applyPriors(rep.Candidates, priors)
			for _, cand := range rep.Candidates {
				if cand.PriorSignificant {
					rep.PriorsUsed = true
					break
				}
			}
		} else if !errors.Is(err, fs.ErrNotExist) {
			rep.ArchiveNote = err.Error()
		}
	}

	if c := opts.Roofline.CeilingGBps(opts.Threads); c > 0 {
		rep.CeilingGBps = c
		rep.RooflineSource = opts.Roofline.Source
		for i := range rep.Candidates {
			cand := &rep.Candidates[i]
			cand.PredSecs = float64(cand.PredBytes) / (c * 1e9)
			cand.Score /= c * 1e9
		}
	}

	rank(rep.Candidates)

	if opts.Budget > 0 {
		if err := probe(c, rep, opts); err != nil {
			return nil, fmt.Errorf("autotune: probe: %w", err)
		}
	}

	for _, cand := range rep.Candidates {
		if cand.Feasible {
			rep.Chosen = cand.Spec
			rep.ChosenPredBytes = cand.PredBytes
			return rep, nil
		}
	}
	return nil, fmt.Errorf("autotune: no feasible candidate for %dx%d nnz=%d",
		ft.Rows, ft.Cols, ft.NNZ)
}

// rank orders candidates best-first: feasible before infeasible,
// probed (by measured time) before unprobed within the feasible set
// when probes ran, ascending score otherwise. The sort is stable over
// the fixed candidate order, so the analytic ranking is bit-stable
// across runs.
func rank(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Probed != b.Probed {
			return a.Probed
		}
		if a.Probed && b.Probed {
			return a.ProbeSecs < b.ProbeSecs
		}
		return a.Score < b.Score
	})
}

// Build constructs the spec's format, routing "hybrid" through the
// autotuned per-region selector rather than the fixed heuristic the
// registry uses.
func Build(c *core.COO, s formats.Spec) (core.Format, error) {
	if s.Name() == "hybrid" {
		return BuildHybrid(c)
	}
	return formats.BuildSpec(c, s)
}
