// Package stats provides the small set of descriptive statistics the
// paper's tables report: average, maximum, minimum over a matrix set,
// plus geometric means and the "< 0.98" slowdown counter of Tables III
// and IV.
package stats

import "math"

// Summary holds the avg/max/min triple the paper's tables report.
type Summary struct {
	Avg, Max, Min float64
	N             int
}

// Summarize computes the arithmetic mean, maximum and minimum of xs.
// An empty slice yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Max: math.Inf(-1), Min: math.Inf(1), N: len(xs)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x > s.Max {
			s.Max = x
		}
		if x < s.Min {
			s.Min = x
		}
	}
	s.Avg = sum / float64(len(xs))
	return s
}

// GeoMean returns the geometric mean of xs (which must be positive).
// An empty slice yields 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// MeanStddev returns the arithmetic mean and the sample (n-1) standard
// deviation of xs. Fewer than two values yield stddev 0 — a single
// measurement has no spread to report.
func MeanStddev(xs []float64) (mean, stddev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// SlowdownThreshold is the paper's "non-negligible slowdown" cutoff:
// a speedup below 0.98 counts as a slowdown (Tables III/IV).
const SlowdownThreshold = 0.98

// CountBelow returns how many values fall strictly below t.
func CountBelow(xs []float64, t float64) int {
	n := 0
	for _, x := range xs {
		if x < t {
			n++
		}
	}
	return n
}

// Speedups divides base by each element of times: speedup_i =
// base/times_i. Used for "relative to serial CSR" columns.
func Speedups(base float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		out[i] = base / t
	}
	return out
}

// MFLOPS converts an SpMV timing to the paper's serial-performance
// metric: 2 floating-point operations per non-zero (multiply + add)
// divided by seconds, in millions.
func MFLOPS(nnz int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return 2 * float64(nnz) / seconds / 1e6
}
