package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 8, 5})
	if s.Avg != 5 || s.Max != 8 || s.Min != 2 || s.N != 3 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Avg != 0 || s.N != 0 {
		t.Errorf("Summarize(nil) = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Avg != 3.5 || s.Max != 3.5 || s.Min != 3.5 {
		t.Errorf("Summarize single = %+v", s)
	}
}

func TestSummarizeBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip non-finite and overflow-prone inputs: the summary is
			// specified only for values whose sum stays finite.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Avg+1e-9 && s.Avg <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestCountBelow(t *testing.T) {
	xs := []float64{0.5, 0.98, 0.979, 1.2}
	if n := CountBelow(xs, SlowdownThreshold); n != 2 {
		t.Errorf("CountBelow = %d, want 2", n)
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups(10, []float64{5, 10, 20})
	want := []float64{2, 1, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Speedups = %v, want %v", got, want)
		}
	}
}

func TestMFLOPS(t *testing.T) {
	// 1M nnz in 1 second = 2 MFLOPS.
	if got := MFLOPS(1_000_000, 1); got != 2 {
		t.Errorf("MFLOPS = %v, want 2", got)
	}
	if MFLOPS(100, 0) != 0 {
		t.Error("MFLOPS with zero time should be 0")
	}
}

func TestMeanStddev(t *testing.T) {
	m, s := MeanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	// Sample stddev of this classic set: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); math.Abs(s-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s, want)
	}
	if m, s := MeanStddev(nil); m != 0 || s != 0 {
		t.Errorf("empty: %v, %v", m, s)
	}
	if m, s := MeanStddev([]float64{3}); m != 3 || s != 0 {
		t.Errorf("single: %v, %v", m, s)
	}
}
