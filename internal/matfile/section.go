package matfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"

	"spmv/internal/core"
)

// countingReader counts the bytes pulled from the underlying reader,
// so the section reader can tell how much of a size-bounded input
// remains even through the bufio layer's readahead.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// sectionReader reads the container's length-prefixed sections. Every
// length is checked against the header-derived per-section cap; when
// the input's total size is known it is additionally checked against
// the bytes actually remaining *before* any allocation — the
// alloc-bomb guard for attacker-reachable inputs (uploads, files).
type sectionReader struct {
	br    *bufio.Reader
	src   *countingReader
	total int64 // total input size, or -1 when unknown
}

// remaining reports the bytes left in a size-bounded input: the total
// minus what the caller has consumed so far (bytes read from the
// source, minus those still sitting unread in the bufio buffer).
func (s *sectionReader) remaining() int64 {
	return s.total - (s.src.n - int64(s.br.Buffered()))
}

// section reads one length-prefixed blob and, for v2 containers,
// verifies its trailing CRC32.
func (s *sectionReader) section(maxLen int64, withCRC bool) ([]byte, error) {
	var n int64
	if err := binary.Read(s.br, binary.LittleEndian, &n); err != nil {
		return nil, core.Truncatedf("matfile: section length: %v", err)
	}
	if n < 0 || n > maxLen {
		return nil, core.Corruptf("matfile: invalid section length %d", n)
	}
	var buf []byte
	if s.total >= 0 {
		// Sized input: a length the input cannot possibly satisfy is
		// rejected here, before the allocation it would imply.
		need := n
		if withCRC {
			need += 4
		}
		if rem := s.remaining(); need > rem {
			return nil, core.Corruptf("matfile: section length %d exceeds remaining input %d", n, rem)
		}
		buf = make([]byte, n)
		if _, err := io.ReadFull(s.br, buf); err != nil {
			return nil, core.Truncatedf("matfile: section body: %v", err)
		}
	} else {
		// Unsized input: allocation must not outrun the data. CopyN into
		// a growing buffer allocates as bytes actually arrive, so a lying
		// multi-gigabyte length fails with a truncation error after
		// consuming only what the stream really holds.
		var bb bytes.Buffer
		if copied, err := io.CopyN(&bb, s.br, n); err != nil {
			return nil, core.Truncatedf("matfile: section body: %d of %d bytes: %v", copied, n, err)
		}
		buf = bb.Bytes()
	}
	if withCRC {
		var stored uint32
		if err := binary.Read(s.br, binary.LittleEndian, &stored); err != nil {
			return nil, core.Truncatedf("matfile: section checksum: %v", err)
		}
		if sum := crc32.ChecksumIEEE(buf); sum != stored {
			return nil, core.Corruptf("matfile: section checksum mismatch (%08x != %08x)", sum, stored)
		}
	}
	return buf, nil
}
