// Package matfile stores encoded matrices in a compact binary
// container, so a compressed matrix (the product of an O(nnz) encoding
// pass) can be built once and memory-mapped or streamed by solver
// processes — the deployment mode the paper's formats target, where
// the same matrix is multiplied hundreds of times per run.
//
// Layout (all integers little-endian):
//
//	magic   4 bytes  "SPMV"
//	version 1 byte
//	name    1-byte length + bytes (format name)
//	rows, cols, nnz  8 bytes each
//	sections: per format, a sequence of length-prefixed byte blobs
//
// Supported formats: csr, csr-du (incl. RLE streams), csr-vi.
package matfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrvi"
)

var magic = [4]byte{'S', 'P', 'M', 'V'}

const version = 1

// Write serializes a supported format to w.
func Write(w io.Writer, f core.Format) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	bw.WriteByte(version)
	name := f.Name()
	if len(name) > 255 {
		return fmt.Errorf("matfile: format name too long")
	}
	bw.WriteByte(byte(len(name)))
	bw.WriteString(name)
	for _, v := range []int64{int64(f.Rows()), int64(f.Cols()), int64(f.NNZ())} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var err error
	switch m := f.(type) {
	case *csr.Matrix:
		err = writeSections(bw, int32Bytes(m.RowPtr), int32Bytes(m.ColInd), floatBytes(m.Values))
	case *csrdu.Matrix:
		err = writeSections(bw, m.Ctl, floatBytes(m.Values))
	case *csrvi.Matrix:
		err = writeSections(bw, int32Bytes(m.RowPtr), int32Bytes(m.ColInd),
			[]byte{byte(m.IndexWidth())}, viBytes(m), floatBytes(m.Unique))
	default:
		return fmt.Errorf("matfile: unsupported format %q", name)
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a matrix written by Write. The concrete type of the
// result matches the stored format name.
func Read(r io.Reader) (core.Format, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("matfile: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("matfile: bad magic %q", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("matfile: unsupported version %d", ver)
	}
	nlen, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	nameB := make([]byte, nlen)
	if _, err := io.ReadFull(br, nameB); err != nil {
		return nil, err
	}
	var rows, cols, nnz int64
	for _, p := range []*int64{&rows, &cols, &nnz} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if rows <= 0 || cols <= 0 || nnz < 0 || nnz > math.MaxInt32 {
		return nil, fmt.Errorf("matfile: invalid shape %dx%d nnz %d", rows, cols, nnz)
	}
	name := string(nameB)
	// Sections can never legitimately exceed this bound (the largest is
	// 8 bytes per nnz); cap allocations so corrupt lengths fail cleanly
	// instead of exhausting memory.
	maxSection := (nnz+rows+cols+2)*8 + 1024
	// The container stores raw streams; rebuilding through triplets
	// revalidates all invariants at O(nnz) cost, which the encoders'
	// construction already pays. That keeps the reader immune to
	// malformed ctl streams.
	switch name {
	case "csr":
		rowPtr, colInd, values, err := readCSRSections(br, rows, nnz, maxSection)
		if err != nil {
			return nil, err
		}
		return rebuildCSR(rowPtr, colInd, values, rows, cols)
	case "csr-du", "csr-du-rle":
		ctl, err := readSection(br, maxSection)
		if err != nil {
			return nil, err
		}
		vals, err := readSection(br, maxSection)
		if err != nil {
			return nil, err
		}
		return rebuildDU(ctl, bytesFloat(vals), rows, cols, nnz, name == "csr-du-rle")
	case "csr-vi":
		rowPtr, err := readSection(br, maxSection)
		if err != nil {
			return nil, err
		}
		colInd, err := readSection(br, maxSection)
		if err != nil {
			return nil, err
		}
		if _, err := readSection(br, maxSection); err != nil { // width (informational)
			return nil, err
		}
		vi, err := readSection(br, maxSection)
		if err != nil {
			return nil, err
		}
		uniq, err := readSection(br, maxSection)
		if err != nil {
			return nil, err
		}
		return rebuildVI(bytesInt32(rowPtr), bytesInt32(colInd), vi, bytesFloat(uniq), rows, cols, nnz)
	default:
		return nil, fmt.Errorf("matfile: unsupported format %q", name)
	}
}

func writeSections(w *bufio.Writer, sections ...[]byte) error {
	for _, s := range sections {
		if err := binary.Write(w, binary.LittleEndian, int64(len(s))); err != nil {
			return err
		}
		if _, err := w.Write(s); err != nil {
			return err
		}
	}
	return nil
}

func readSection(r io.Reader, maxLen int64) ([]byte, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > maxLen {
		return nil, fmt.Errorf("matfile: invalid section length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func readCSRSections(r io.Reader, rows, nnz, maxSection int64) ([]int32, []int32, []float64, error) {
	rp, err := readSection(r, maxSection)
	if err != nil {
		return nil, nil, nil, err
	}
	ci, err := readSection(r, maxSection)
	if err != nil {
		return nil, nil, nil, err
	}
	vs, err := readSection(r, maxSection)
	if err != nil {
		return nil, nil, nil, err
	}
	rowPtr, colInd, values := bytesInt32(rp), bytesInt32(ci), bytesFloat(vs)
	if int64(len(rowPtr)) != rows+1 || int64(len(colInd)) != nnz || int64(len(values)) != nnz {
		return nil, nil, nil, fmt.Errorf("matfile: section sizes inconsistent with header")
	}
	return rowPtr, colInd, values, nil
}

// validRowPtr checks that a row pointer is monotone and spans exactly
// [0, nnz] — a corrupt one would send the rebuild loops out of bounds.
func validRowPtr(rowPtr []int32, nnz int64) error {
	if len(rowPtr) == 0 || rowPtr[0] != 0 || int64(rowPtr[len(rowPtr)-1]) != nnz {
		return fmt.Errorf("matfile: row pointer does not span nnz")
	}
	for i := 1; i < len(rowPtr); i++ {
		if rowPtr[i] < rowPtr[i-1] {
			return fmt.Errorf("matfile: row pointer not monotone at %d", i)
		}
	}
	return nil
}

func rebuildCSR(rowPtr, colInd []int32, values []float64, rows, cols int64) (core.Format, error) {
	if err := validRowPtr(rowPtr, int64(len(values))); err != nil {
		return nil, err
	}
	c := core.NewCOO(int(rows), int(cols))
	for i := int64(0); i < rows; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colInd[k] < 0 || int64(colInd[k]) >= cols {
				return nil, fmt.Errorf("matfile: column %d out of range", colInd[k])
			}
			c.Add(int(i), int(colInd[k]), values[k])
		}
	}
	return csr.FromCOO(c)
}

func rebuildDU(ctl []byte, values []float64, rows, cols, nnz int64, rle bool) (core.Format, error) {
	if int64(len(values)) != nnz {
		return nil, fmt.Errorf("matfile: value count %d != header nnz %d", len(values), nnz)
	}
	_ = rle // recorded in the stream itself; FromRaw detects RLE units
	return csrdu.FromRaw(ctl, values, int(rows), int(cols))
}

func rebuildVI(rowPtr, colInd []int32, vi []byte, uniq []float64, rows, cols, nnz int64) (core.Format, error) {
	if int64(len(rowPtr)) != rows+1 || int64(len(colInd)) != nnz {
		return nil, fmt.Errorf("matfile: section sizes inconsistent with header")
	}
	width := 1
	switch {
	case len(uniq) > 1<<16:
		width = 4
	case len(uniq) > 1<<8:
		width = 2
	}
	if int64(len(vi)) != nnz*int64(width) {
		return nil, fmt.Errorf("matfile: val_ind size %d inconsistent with %d unique", len(vi), len(uniq))
	}
	if err := validRowPtr(rowPtr, nnz); err != nil {
		return nil, err
	}
	c := core.NewCOO(int(rows), int(cols))
	for i := int64(0); i < rows; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			var idx int
			switch width {
			case 1:
				idx = int(vi[k])
			case 2:
				idx = int(binary.LittleEndian.Uint16(vi[int(k)*2:]))
			default:
				idx = int(binary.LittleEndian.Uint32(vi[int(k)*4:]))
			}
			if idx >= len(uniq) {
				return nil, fmt.Errorf("matfile: value index %d out of range", idx)
			}
			if colInd[k] < 0 || int64(colInd[k]) >= cols {
				return nil, fmt.Errorf("matfile: column %d out of range", colInd[k])
			}
			c.Add(int(i), int(colInd[k]), uniq[idx])
		}
	}
	return csrvi.FromCOO(c)
}

func int32Bytes(s []int32) []byte {
	out := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

func bytesInt32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func floatBytes(s []float64) []byte {
	out := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func bytesFloat(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func viBytes(m *csrvi.Matrix) []byte {
	switch {
	case m.VI8 != nil:
		return append([]byte(nil), m.VI8...)
	case m.VI16 != nil:
		out := make([]byte, 2*len(m.VI16))
		for i, v := range m.VI16 {
			binary.LittleEndian.PutUint16(out[i*2:], v)
		}
		return out
	default:
		out := make([]byte, 4*len(m.VI32))
		for i, v := range m.VI32 {
			binary.LittleEndian.PutUint32(out[i*4:], v)
		}
		return out
	}
}
