// Package matfile stores encoded matrices in a compact binary
// container, so a compressed matrix (the product of an O(nnz) encoding
// pass) can be built once and memory-mapped or streamed by solver
// processes — the deployment mode the paper's formats target, where
// the same matrix is multiplied hundreds of times per run.
//
// Layout (all integers little-endian):
//
//	magic   4 bytes  "SPMV"
//	version 1 byte
//	name    1-byte length + bytes (format name)
//	rows, cols, nnz  8 bytes each
//	header CRC32 (IEEE) over name + dims   [version >= 2]
//	sections: per format, a sequence of length-prefixed byte blobs,
//	          each followed by its CRC32   [version >= 2]
//
// Version 1 files (no checksums) are still readable. Writers always
// produce version 2: with the section checksums, any single-byte
// corruption of a stored stream is detected at load time — structural
// validation alone cannot catch a flipped value byte or a flipped
// index delta that still lands in range.
//
// All load-time failures wrap the core error sentinels: corrupt bytes
// and checksum mismatches test true against core.ErrCorrupt, short
// reads against core.ErrTruncated, and header/section size
// inconsistencies against core.ErrShape.
//
// Supported formats: csr, csr16, csr-du (incl. RLE streams), csr-vi,
// csr-du-vi, dcsr.
package matfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrduvi"
	"spmv/internal/csrvi"
	"spmv/internal/dcsr"
)

var magic = [4]byte{'S', 'P', 'M', 'V'}

const version = 2

// Write serializes a supported format to w.
func Write(w io.Writer, f core.Format) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	name := f.Name()
	if len(name) > 255 {
		return fmt.Errorf("matfile: format name too long")
	}
	var hdr bytes.Buffer
	hdr.WriteByte(byte(len(name)))
	hdr.WriteString(name)
	for _, v := range []int64{int64(f.Rows()), int64(f.Cols()), int64(f.NNZ())} {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		hdr.Write(tmp[:])
	}
	if _, err := bw.Write(hdr.Bytes()); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(hdr.Bytes()))
	if _, err := bw.Write(crc[:]); err != nil {
		return err
	}
	var err error
	switch m := f.(type) {
	case *csr.Matrix:
		err = writeSections(bw, int32Bytes(m.RowPtr), int32Bytes(m.ColInd), floatBytes(m.Values))
	case *csr.Matrix16:
		err = writeSections(bw, int32Bytes(m.RowPtr), uint16Bytes(m.ColInd), floatBytes(m.Values))
	case *csrdu.Matrix:
		err = writeSections(bw, m.Ctl, floatBytes(m.Values))
	case *dcsr.Matrix:
		err = writeSections(bw, m.Cmds, floatBytes(m.Values))
	case *csrvi.Matrix:
		err = writeSections(bw, int32Bytes(m.RowPtr), int32Bytes(m.ColInd),
			[]byte{byte(m.IndexWidth())}, viBytes(m.VI8, m.VI16, m.VI32), floatBytes(m.Unique))
	case *csrduvi.Matrix:
		err = writeSections(bw, m.Ctl(),
			[]byte{byte(m.IndexWidth())}, viBytes(m.VI8, m.VI16, m.VI32), floatBytes(m.Unique))
	default:
		return fmt.Errorf("matfile: unsupported format %q", name)
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a matrix written by Write. The concrete type of the
// result matches the stored format name. Version 2 files are checksum-
// verified section by section; the rebuilt matrix is additionally run
// through its format verifier before being returned, so a matrix that
// loads without error is safe to hand to the trusting SpMV kernels.
//
// Read cannot know how many bytes r really holds, so a section header
// claiming a huge length is only bounded by the header's nnz-derived
// cap; allocation for large claims grows incrementally as bytes
// actually arrive, never up front. When the input's total size is
// known — a file, an HTTP upload — prefer ReadSized, which rejects
// lying lengths outright.
func Read(r io.Reader) (core.Format, error) {
	return readAll(r, -1)
}

// ReadSized is Read for inputs of known total size (an upload body, a
// stat-able file). Every section length is checked against the bytes
// actually remaining in the input *before* any allocation, so a
// corrupt or hostile header claiming a multi-gigabyte section fails
// with core.ErrCorrupt immediately instead of attempting the
// allocation — the alloc-bomb guard an attacker-reachable upload
// endpoint needs.
func ReadSized(r io.Reader, total int64) (core.Format, error) {
	if total < 0 {
		return nil, core.Shapef("matfile: negative input size %d", total)
	}
	return readAll(r, total)
}

func readAll(r io.Reader, total int64) (core.Format, error) {
	src := &countingReader{r: r}
	br := bufio.NewReader(src)
	sr := &sectionReader{br: br, src: src, total: total}
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, core.Truncatedf("matfile: magic: %v", err)
	}
	if m != magic {
		return nil, core.Corruptf("matfile: bad magic %q", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, core.Truncatedf("matfile: version: %v", err)
	}
	if ver != 1 && ver != 2 {
		return nil, fmt.Errorf("matfile: unsupported version %d", ver)
	}
	withCRC := ver >= 2
	hsum := crc32.NewIEEE()
	hr := io.TeeReader(br, hsum)
	var nlen [1]byte
	if _, err := io.ReadFull(hr, nlen[:]); err != nil {
		return nil, core.Truncatedf("matfile: header: %v", err)
	}
	nameB := make([]byte, nlen[0])
	if _, err := io.ReadFull(hr, nameB); err != nil {
		return nil, core.Truncatedf("matfile: header: %v", err)
	}
	var rows, cols, nnz int64
	for _, p := range []*int64{&rows, &cols, &nnz} {
		if err := binary.Read(hr, binary.LittleEndian, p); err != nil {
			return nil, core.Truncatedf("matfile: header: %v", err)
		}
	}
	if withCRC {
		var stored uint32
		if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
			return nil, core.Truncatedf("matfile: header checksum: %v", err)
		}
		if sum := hsum.Sum32(); sum != stored {
			return nil, core.Corruptf("matfile: header checksum mismatch (%08x != %08x)", sum, stored)
		}
	}
	if rows <= 0 || cols <= 0 || nnz < 0 || nnz > math.MaxInt32 {
		return nil, core.Shapef("matfile: invalid shape %dx%d nnz %d", rows, cols, nnz)
	}
	name := string(nameB)
	// Sections can never legitimately exceed this bound (the largest is
	// 8 bytes per nnz); cap allocations so corrupt lengths fail cleanly
	// instead of exhausting memory.
	maxSection := (nnz+rows+cols+2)*8 + 1024
	// The container stores raw streams; rebuilding through triplets or a
	// validating FromRaw revalidates all invariants at O(nnz) cost, which
	// the encoders' construction already pays. That keeps the reader
	// immune to malformed ctl/command streams.
	f, err := readBody(sr, name, rows, cols, nnz, maxSection, withCRC)
	if err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, core.Corruptf("matfile: trailing data after last section")
	}
	if err := core.Verify(f); err != nil {
		return nil, fmt.Errorf("matfile: %w", err)
	}
	return f, nil
}

func readBody(sr *sectionReader, name string, rows, cols, nnz, maxSection int64, withCRC bool) (core.Format, error) {
	switch name {
	case "csr", "csr16":
		rp, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		ci, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		vs, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		rowPtr, values := bytesInt32(rp), bytesFloat(vs)
		var colInd []int32
		if name == "csr16" {
			if len(ci)%2 != 0 {
				return nil, core.Shapef("matfile: csr16 column section size %d is odd", len(ci))
			}
			colInd = make([]int32, len(ci)/2)
			for i := range colInd {
				colInd[i] = int32(binary.LittleEndian.Uint16(ci[i*2:]))
			}
		} else {
			colInd = bytesInt32(ci)
		}
		if int64(len(rowPtr)) != rows+1 || int64(len(colInd)) != nnz || int64(len(values)) != nnz {
			return nil, core.Shapef("matfile: section sizes inconsistent with header")
		}
		return rebuildCSR(colInd, rowPtr, values, rows, cols, name == "csr16")
	case "csr-du", "csr-du-rle":
		ctl, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		vals, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		values := bytesFloat(vals)
		if int64(len(values)) != nnz {
			return nil, core.Shapef("matfile: value count %d != header nnz %d", len(values), nnz)
		}
		// RLE is recorded in the stream itself; FromRaw detects RLE units.
		return csrdu.FromRaw(ctl, values, int(rows), int(cols))
	case "dcsr":
		cmds, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		vals, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		values := bytesFloat(vals)
		if int64(len(values)) != nnz {
			return nil, core.Shapef("matfile: value count %d != header nnz %d", len(values), nnz)
		}
		return dcsr.FromRaw(cmds, values, int(rows), int(cols))
	case "csr-vi":
		rowPtr, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		colInd, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		width, vi, uniq, err := readVISections(sr, maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		return rebuildVI(bytesInt32(rowPtr), bytesInt32(colInd), width, vi, uniq, rows, cols, nnz)
	case "csr-du-vi":
		ctl, err := sr.section(maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		width, vi, uniq, err := readVISections(sr, maxSection, withCRC)
		if err != nil {
			return nil, err
		}
		if width != 1 && width != 2 && width != 4 {
			return nil, core.Corruptf("matfile: invalid val_ind width %d", width)
		}
		if int64(len(vi)) != nnz*int64(width) {
			return nil, core.Shapef("matfile: val_ind size %d inconsistent with header nnz %d", len(vi), nnz)
		}
		return csrduvi.FromRaw(ctl, width, vi, uniq, int(rows), int(cols))
	default:
		return nil, fmt.Errorf("matfile: unsupported format %q", name)
	}
}

// readVISections reads the width/val_ind/unique section triple shared
// by the csr-vi and csr-du-vi layouts.
func readVISections(sr *sectionReader, maxSection int64, withCRC bool) (width int, vi []byte, uniq []float64, err error) {
	wb, err := sr.section(maxSection, withCRC)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(wb) != 1 {
		return 0, nil, nil, core.Shapef("matfile: width section is %d bytes, want 1", len(wb))
	}
	vi, err = sr.section(maxSection, withCRC)
	if err != nil {
		return 0, nil, nil, err
	}
	uq, err := sr.section(maxSection, withCRC)
	if err != nil {
		return 0, nil, nil, err
	}
	return int(wb[0]), vi, bytesFloat(uq), nil
}

func writeSections(w *bufio.Writer, sections ...[]byte) error {
	for _, s := range sections {
		if err := binary.Write(w, binary.LittleEndian, int64(len(s))); err != nil {
			return err
		}
		if _, err := w.Write(s); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(s)); err != nil {
			return err
		}
	}
	return nil
}

// validRowPtr checks that a row pointer is monotone and spans exactly
// [0, nnz] — a corrupt one would send the rebuild loops out of bounds.
func validRowPtr(rowPtr []int32, nnz int64) error {
	if len(rowPtr) == 0 || rowPtr[0] != 0 || int64(rowPtr[len(rowPtr)-1]) != nnz {
		return core.Corruptf("matfile: row pointer does not span nnz")
	}
	for i := 1; i < len(rowPtr); i++ {
		if rowPtr[i] < rowPtr[i-1] {
			return core.Corruptf("matfile: row pointer not monotone at %d", i)
		}
	}
	return nil
}

func rebuildCSR(colInd, rowPtr []int32, values []float64, rows, cols int64, wide16 bool) (core.Format, error) {
	if err := validRowPtr(rowPtr, int64(len(values))); err != nil {
		return nil, err
	}
	c := core.NewCOO(int(rows), int(cols))
	for i := int64(0); i < rows; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colInd[k] < 0 || int64(colInd[k]) >= cols {
				return nil, core.Corruptf("matfile: column %d out of range", colInd[k])
			}
			c.Add(int(i), int(colInd[k]), values[k])
		}
	}
	if wide16 {
		return csr.From16(c)
	}
	return csr.FromCOO(c)
}

func rebuildVI(rowPtr, colInd []int32, width int, vi []byte, uniq []float64, rows, cols, nnz int64) (core.Format, error) {
	if int64(len(rowPtr)) != rows+1 || int64(len(colInd)) != nnz {
		return nil, core.Shapef("matfile: section sizes inconsistent with header")
	}
	if width != 1 && width != 2 && width != 4 {
		return nil, core.Corruptf("matfile: invalid val_ind width %d", width)
	}
	if int64(len(vi)) != nnz*int64(width) {
		return nil, core.Shapef("matfile: val_ind size %d inconsistent with header nnz %d", len(vi), nnz)
	}
	if err := validRowPtr(rowPtr, nnz); err != nil {
		return nil, err
	}
	c := core.NewCOO(int(rows), int(cols))
	for i := int64(0); i < rows; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			var idx int
			switch width {
			case 1:
				idx = int(vi[k])
			case 2:
				idx = int(binary.LittleEndian.Uint16(vi[int(k)*2:]))
			default:
				idx = int(binary.LittleEndian.Uint32(vi[int(k)*4:]))
			}
			if idx >= len(uniq) {
				return nil, core.Corruptf("matfile: value index %d out of range", idx)
			}
			if colInd[k] < 0 || int64(colInd[k]) >= cols {
				return nil, core.Corruptf("matfile: column %d out of range", colInd[k])
			}
			c.Add(int(i), int(colInd[k]), uniq[idx])
		}
	}
	return csrvi.FromCOO(c)
}

func int32Bytes(s []int32) []byte {
	out := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

func bytesInt32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func uint16Bytes(s []uint16) []byte {
	out := make([]byte, 2*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint16(out[i*2:], v)
	}
	return out
}

func floatBytes(s []float64) []byte {
	out := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func bytesFloat(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func viBytes(vi8 []uint8, vi16 []uint16, vi32 []uint32) []byte {
	switch {
	case vi8 != nil:
		return append([]byte(nil), vi8...)
	case vi16 != nil:
		return uint16Bytes(vi16)
	default:
		out := make([]byte, 4*len(vi32))
		for i, v := range vi32 {
			binary.LittleEndian.PutUint32(out[i*4:], v)
		}
		return out
	}
}
