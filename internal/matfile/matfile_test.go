package matfile

import (
	"bytes"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrvi"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func roundTrip(t *testing.T, f core.Format) core.Format {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return back
}

func checkEqual(t *testing.T, a, b core.Format, cols int) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.NNZ() != b.NNZ() {
		t.Fatalf("shape mismatch: %dx%d/%d vs %dx%d/%d",
			a.Rows(), a.Cols(), a.NNZ(), b.Rows(), b.Cols(), b.NNZ())
	}
	rng := rand.New(rand.NewSource(1))
	x := testmat.RandVec(rng, cols)
	y1 := make([]float64, a.Rows())
	y2 := make([]float64, a.Rows())
	a.SpMV(y1, x)
	b.SpMV(y2, x)
	testmat.AssertClose(t, "roundtrip SpMV", y2, y1, 1e-14)
}

func TestRoundTripCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := matgen.FEMLike(rng, 150, 5, matgen.Values{})
	m, _ := csr.FromCOO(c)
	back := roundTrip(t, m)
	if back.Name() != "csr" {
		t.Errorf("Name = %q", back.Name())
	}
	checkEqual(t, m, back, c.Cols())
}

func TestRoundTripCSRDU(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, o := range []csrdu.Options{{}, {RLE: true}} {
		c := matgen.BlockDiag(rng, 20, 10, matgen.Values{})
		m, _ := csrdu.FromCOOOpts(c, o)
		back := roundTrip(t, m)
		checkEqual(t, m, back, c.Cols())
		// The reconstructed matrix must still partition correctly.
		du := back.(*csrdu.Matrix)
		if len(du.Split(4)) == 0 {
			t.Error("reconstructed matrix cannot split")
		}
		if o.RLE && back.Name() != "csr-du-rle" {
			t.Errorf("RLE stream read back as %q", back.Name())
		}
	}
}

func TestRoundTripCSRVI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, unique := range []int{5, 300} {
		c := matgen.RandomUniform(rng, 120, 400, 6, matgen.Values{Unique: unique})
		m, _ := csrvi.FromCOO(c)
		back := roundTrip(t, m)
		checkEqual(t, m, back, c.Cols())
		vi := back.(*csrvi.Matrix)
		if vi.IndexWidth() != m.IndexWidth() {
			t.Errorf("width %d -> %d", m.IndexWidth(), vi.IndexWidth())
		}
	}
}

func TestRejectUnsupportedFormat(t *testing.T) {
	c := core.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Finalize()
	f := fake{}
	var buf bytes.Buffer
	if err := Write(&buf, f); err == nil {
		t.Error("unsupported format accepted")
	}
}

type fake struct{}

func (fake) Name() string        { return "fake" }
func (fake) Rows() int           { return 1 }
func (fake) Cols() int           { return 1 }
func (fake) NNZ() int            { return 0 }
func (fake) SizeBytes() int64    { return 0 }
func (fake) SpMV(y, x []float64) {}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE....."),
		"truncated": []byte("SPMV"),
	}
	for name, b := range cases {
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadRejectsCorruptCtl(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := matgen.Banded(rng, 100, 5, 4, matgen.Values{})
	m, _ := csrdu.FromCOO(c)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip bytes in the ctl section region; every corruption must either
	// read back to an equivalent-sized stream or fail cleanly (never
	// panic).
	for off := 40; off < len(raw); off += 7 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corruption at offset %d: %v", off, r)
				}
			}()
			f, err := Read(bytes.NewReader(mut))
			if err == nil && f.NNZ() != m.NNZ() {
				t.Errorf("corruption at %d silently changed nnz", off)
			}
		}()
	}
}

func TestFromRawValidation(t *testing.T) {
	c := matgen.Stencil2D(6)
	m, _ := csrdu.FromCOO(c)
	// Valid raw reconstruction.
	back, err := csrdu.FromRaw(m.Ctl, m.Values, m.Rows(), m.Cols())
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, m, back, m.Cols())
	// Wrong value count.
	if _, err := csrdu.FromRaw(m.Ctl, m.Values[:len(m.Values)-1], m.Rows(), m.Cols()); err == nil {
		t.Error("short values accepted")
	}
	// Wrong dimensions.
	if _, err := csrdu.FromRaw(m.Ctl, m.Values, 2, 2); err == nil {
		t.Error("out-of-range rows accepted")
	}
	// Truncated stream.
	if _, err := csrdu.FromRaw(m.Ctl[:len(m.Ctl)-1], m.Values, m.Rows(), m.Cols()); err == nil {
		t.Error("truncated ctl accepted")
	}
	// Missing NR on first unit.
	bad := append([]byte(nil), m.Ctl...)
	bad[0] &^= 0x40
	if _, err := csrdu.FromRaw(bad, m.Values, m.Rows(), m.Cols()); err == nil {
		t.Error("NR-less first unit accepted")
	}
}
