package matfile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrduvi"
	"spmv/internal/csrvi"
	"spmv/internal/dcsr"
	"spmv/internal/matgen"
)

func TestRoundTripCSR16(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := matgen.Banded(rng, 80, 6, 4, matgen.Values{})
	m, err := csr.From16(c)
	if err != nil {
		t.Fatalf("From16: %v", err)
	}
	back := roundTrip(t, m)
	if back.Name() != "csr16" {
		t.Errorf("Name = %q", back.Name())
	}
	checkEqual(t, m, back, c.Cols())
}

func TestRoundTripDCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := matgen.RandomUniform(rng, 120, 300, 3, matgen.Values{})
	m, err := dcsr.FromCOO(c)
	if err != nil {
		t.Fatalf("FromCOO: %v", err)
	}
	back := roundTrip(t, m)
	if back.Name() != "dcsr" {
		t.Errorf("Name = %q", back.Name())
	}
	checkEqual(t, m, back, c.Cols())
}

func TestRoundTripCSRDUVI(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, o := range []csrdu.Options{{}, {RLE: true}} {
		c := matgen.BlockDiag(rng, 15, 8, matgen.Values{Unique: 9})
		m, err := csrduvi.FromCOOOpts(c, o)
		if err != nil {
			t.Fatalf("FromCOOOpts: %v", err)
		}
		back := roundTrip(t, m)
		if back.Name() != "csr-du-vi" {
			t.Errorf("Name = %q", back.Name())
		}
		checkEqual(t, m, back, c.Cols())
		vi := back.(*csrduvi.Matrix)
		if vi.IndexWidth() != m.IndexWidth() {
			t.Errorf("width %d -> %d", m.IndexWidth(), vi.IndexWidth())
		}
	}
}

// writeV1 serializes a CSR matrix in the version-1 layout (no
// checksums), byte-for-byte what the old writer produced.
func writeV1(m *csr.Matrix) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(1)
	name := m.Name()
	buf.WriteByte(byte(len(name)))
	buf.WriteString(name)
	for _, v := range []int64{int64(m.Rows()), int64(m.Cols()), int64(m.NNZ())} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	for _, s := range [][]byte{int32Bytes(m.RowPtr), int32Bytes(m.ColInd), floatBytes(m.Values)} {
		binary.Write(&buf, binary.LittleEndian, int64(len(s)))
		buf.Write(s)
	}
	return buf.Bytes()
}

func TestReadVersion1(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c := matgen.FEMLike(rng, 60, 4, matgen.Values{})
	m, _ := csr.FromCOO(c)
	back, err := Read(bytes.NewReader(writeV1(m)))
	if err != nil {
		t.Fatalf("Read version-1 file: %v", err)
	}
	checkEqual(t, m, back, c.Cols())
}

func TestReadTypedErrors(t *testing.T) {
	m, _ := csr.FromCOO(matgen.Stencil2D(4))
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	t.Run("truncated", func(t *testing.T) {
		_, err := Read(bytes.NewReader(full[:len(full)-3]))
		if !errors.Is(err, core.ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("section corruption", func(t *testing.T) {
		mut := append([]byte(nil), full...)
		mut[len(mut)-10] ^= 0x01 // inside the values section
		_, err := Read(bytes.NewReader(mut))
		if !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), full...)
		mut[0] ^= 0x01
		_, err := Read(bytes.NewReader(mut))
		if !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("trailing data", func(t *testing.T) {
		mut := append(append([]byte(nil), full...), 0)
		_, err := Read(bytes.NewReader(mut))
		if !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// corruptionFixtures builds one small matrix per supported container
// format. The matrices are tiny so the injection test can afford to
// flip bits at every byte offset of every file.
func corruptionFixtures(t *testing.T) map[string]core.Format {
	t.Helper()
	rng := rand.New(rand.NewSource(15))
	c := matgen.Banded(rng, 24, 4, 3, matgen.Values{Unique: 6})
	out := make(map[string]core.Format)
	add := func(name string, f core.Format, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = f
	}
	m, err := csr.FromCOO(c)
	add("csr", m, err)
	m16, err := csr.From16(c)
	add("csr16", m16, err)
	du, err := csrdu.FromCOO(c)
	add("csr-du", du, err)
	rle, err := csrdu.FromCOOOpts(c, csrdu.Options{RLE: true})
	add(rle.Name(), rle, err)
	dc, err := dcsr.FromCOO(c)
	add("dcsr", dc, err)
	vi, err := csrvi.FromCOO(c)
	add("csr-vi", vi, err)
	duvi, err := csrduvi.FromCOO(c)
	add("csr-du-vi", duvi, err)
	return out
}

// TestSingleByteCorruption is the robustness contract of the container:
// flipping any single byte of a stored matrix either fails the load
// with a typed error or — never in practice with CRCs, but permitted
// by the contract — yields a matrix whose SpMV output is identical.
// Silent output changes are the one forbidden outcome.
func TestSingleByteCorruption(t *testing.T) {
	for name, f := range corruptionFixtures(t) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Write(&buf, f); err != nil {
				t.Fatalf("Write: %v", err)
			}
			raw := buf.Bytes()
			x := make([]float64, f.Cols())
			for i := range x {
				x[i] = float64(i%5) + 0.5
			}
			want := make([]float64, f.Rows())
			f.SpMV(want, x)
			detected := 0
			for off := 0; off < len(raw); off++ {
				for _, bit := range []byte{0x01, 0x80} {
					mut := append([]byte(nil), raw...)
					mut[off] ^= bit
					g, err := Read(bytes.NewReader(mut))
					if err != nil {
						detected++
						continue
					}
					if g.Rows() != f.Rows() || g.Cols() != f.Cols() {
						t.Fatalf("offset %d bit %#x: silent shape change", off, bit)
					}
					got := make([]float64, g.Rows())
					g.SpMV(got, x)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("offset %d bit %#x: silent output change at row %d (%v != %v)",
								off, bit, i, got[i], want[i])
						}
					}
				}
			}
			if detected == 0 {
				t.Fatal("no corruption was ever detected — checksums are not wired in")
			}
		})
	}
}

// FuzzRead feeds arbitrary bytes to the container reader: it must
// reject or accept without panicking, and anything it accepts must
// pass its format verifier and run SpMV in bounds.
func FuzzRead(f *testing.F) {
	rng := rand.New(rand.NewSource(16))
	c := matgen.Banded(rng, 16, 3, 2, matgen.Values{Unique: 4})
	for _, build := range []func() (core.Format, error){
		func() (core.Format, error) { return csr.FromCOO(c) },
		func() (core.Format, error) { return csrdu.FromCOO(c) },
		func() (core.Format, error) { return dcsr.FromCOO(c) },
		func() (core.Format, error) { return csrvi.FromCOO(c) },
		func() (core.Format, error) { return csrduvi.FromCOO(c) },
	} {
		m, err := build()
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("SPMV"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := core.Verify(g); verr != nil {
			t.Fatalf("Read accepted but Verify rejects: %v", verr)
		}
		x := make([]float64, g.Cols())
		y := make([]float64, g.Rows())
		g.SpMV(y, x)
	})
}
