package matfile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
)

// allocBombFile builds a syntactically valid v2 header claiming a huge
// nnz (which inflates the per-section cap to many gigabytes) followed
// by a section length header demanding sectionLen bytes that the file
// does not contain. Before the sized-read guard, loading this would
// attempt a multi-gigabyte allocation from a few dozen input bytes.
func allocBombFile(sectionLen int64) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(version)
	var hdr bytes.Buffer
	name := "csr"
	hdr.WriteByte(byte(len(name)))
	hdr.WriteString(name)
	for _, v := range []int64{1000, 1000, math.MaxInt32} {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		hdr.Write(tmp[:])
	}
	buf.Write(hdr.Bytes())
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(hdr.Bytes()))
	buf.Write(crc[:])
	var slen [8]byte
	binary.LittleEndian.PutUint64(slen[:], uint64(sectionLen))
	buf.Write(slen[:])
	// A token amount of body — nowhere near sectionLen.
	buf.Write(make([]byte, 64))
	return buf.Bytes()
}

// TestReadSizedRejectsAllocBomb is the corrupt-header regression test:
// a section length exceeding the input's remaining bytes must fail
// with core.ErrCorrupt before any allocation is attempted.
func TestReadSizedRejectsAllocBomb(t *testing.T) {
	// 8 GiB claimed, inside the nnz-derived cap but far beyond the file.
	data := allocBombFile(8 << 30)
	if _, err := ReadSized(bytes.NewReader(data), int64(len(data))); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("ReadSized(alloc bomb): got %v, want ErrCorrupt", err)
	}
}

// TestReadUnsizedAllocBombTruncates checks the unsized path's defense:
// allocation grows only as bytes actually arrive, so the same bomb
// fails with a truncation error after consuming the real input, not
// with an 8 GiB up-front allocation.
func TestReadUnsizedAllocBombTruncates(t *testing.T) {
	data := allocBombFile(8 << 30)
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, core.ErrTruncated) {
		t.Fatalf("Read(alloc bomb): got %v, want ErrTruncated", err)
	}
}

// TestReadSizedNegativeTotal checks the argument guard.
func TestReadSizedNegativeTotal(t *testing.T) {
	if _, err := ReadSized(bytes.NewReader(nil), -1); !errors.Is(err, core.ErrShape) {
		t.Fatalf("ReadSized(-1): got %v, want ErrShape", err)
	}
}

// TestReadSizedRoundTrip checks the sized path loads a valid file
// identically to Read.
func TestReadSizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := matgen.FEMLike(rng, 80, 4, matgen.Values{})
	m, err := csr.FromCOO(c)
	if err != nil {
		t.Fatalf("csr: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := ReadSized(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("ReadSized: %v", err)
	}
	checkEqual(t, m, back, c.Cols())
}

// TestReadSizedLyingShortTotal checks that a total smaller than the
// real file still rejects sections honestly (remaining goes negative).
func TestReadSizedLyingShortTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := matgen.FEMLike(rng, 80, 4, matgen.Values{})
	m, err := csr.FromCOO(c)
	if err != nil {
		t.Fatalf("csr: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := ReadSized(bytes.NewReader(buf.Bytes()), 40); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("ReadSized(short total): got %v, want ErrCorrupt", err)
	}
}
