package csrvi

import "spmv/internal/core"

// Verify implements core.Verifier: standard CSR structure checks on
// RowPtr/ColInd plus the value-indirection invariants — exactly one
// val_ind array present, one entry per non-zero, and every entry
// inside vals_unique. O(nnz).
func (m *Matrix) Verify() error {
	if m.rows < 0 || m.cols < 0 {
		return core.Shapef("csrvi: negative dimensions %dx%d", m.rows, m.cols)
	}
	if len(m.RowPtr) != m.rows+1 {
		return core.Shapef("csrvi: row pointer length %d, want %d", len(m.RowPtr), m.rows+1)
	}
	if err := core.CheckRowPtr(m.RowPtr, len(m.ColInd)); err != nil {
		return err
	}
	if err := core.CheckColInd(m.ColInd, m.cols); err != nil {
		return err
	}
	narrays := 0
	for _, present := range []bool{m.VI8 != nil, m.VI16 != nil, m.VI32 != nil} {
		if present {
			narrays++
		}
	}
	if narrays != 1 && !(narrays == 0 && len(m.ColInd) == 0) {
		return core.Corruptf("csrvi: %d val_ind arrays present, want exactly one", narrays)
	}
	uv := len(m.Unique)
	switch {
	case m.VI8 != nil:
		if len(m.VI8) != len(m.ColInd) {
			return core.Shapef("csrvi: %d val_ind entries for %d non-zeros", len(m.VI8), len(m.ColInd))
		}
		for k, vi := range m.VI8 {
			if int(vi) >= uv {
				return core.Corruptf("csrvi: value index %d at position %d outside %d unique values", vi, k, uv)
			}
		}
	case m.VI16 != nil:
		if len(m.VI16) != len(m.ColInd) {
			return core.Shapef("csrvi: %d val_ind entries for %d non-zeros", len(m.VI16), len(m.ColInd))
		}
		for k, vi := range m.VI16 {
			if int(vi) >= uv {
				return core.Corruptf("csrvi: value index %d at position %d outside %d unique values", vi, k, uv)
			}
		}
	case m.VI32 != nil:
		if len(m.VI32) != len(m.ColInd) {
			return core.Shapef("csrvi: %d val_ind entries for %d non-zeros", len(m.VI32), len(m.ColInd))
		}
		for k, vi := range m.VI32 {
			if int(vi) >= uv {
				return core.Corruptf("csrvi: value index %d at position %d outside %d unique values", vi, k, uv)
			}
		}
	}
	return nil
}
