package csrvi

import "spmv/internal/core"

// Compute-cost model: CSR-VI adds one indirection (load of val_ind,
// index into vals_unique) to the CSR iteration.
const viCompPerNNZ = 4

// Place implements core.Placer.
func (m *Matrix) Place(a *core.Arena) {
	m.rowPtrBase = a.Alloc(int64(len(m.RowPtr)) * 4)
	m.colIndBase = a.Alloc(int64(len(m.ColInd)) * 4)
	m.viBase = a.Alloc(int64(m.NNZ()) * int64(m.IndexWidth()))
	m.uniqBase = a.Alloc(int64(len(m.Unique)) * 8)
}

// TraceSpMV implements core.Tracer. The val_ind array is streamed; the
// vals_unique table is a gather — for applicable matrices it is tiny
// and lives in L1, which is exactly why the scheme wins.
func (c *chunk) TraceSpMV(xBase, yBase uint64, emit core.EmitFunc) {
	m := c.m
	if m.rowPtrBase == 0 {
		panic(core.Usagef("csrvi: TraceSpMV before Place"))
	}
	w := int64(m.IndexWidth())
	rp := core.NewStreamCursor(m.rowPtrBase)
	ci := core.NewStreamCursor(m.colIndBase)
	vi := core.NewStreamCursor(m.viBase)
	yw := core.NewStreamCursor(yBase)
	uniqueIdx := func(j int32) uint64 {
		switch {
		case m.VI8 != nil:
			return uint64(m.VI8[j])
		case m.VI16 != nil:
			return uint64(m.VI16[j])
		default:
			return uint64(m.VI32[j])
		}
	}
	for i := c.lo; i < c.hi; i++ {
		rp.Touch(emit, int64(i)*4, 8, false, 2)
		for j := m.RowPtr[i]; j < m.RowPtr[i+1]; j++ {
			ci.Touch(emit, int64(j)*4, 4, false, 0)
			vi.Touch(emit, int64(j)*w, int(w), false, 0)
			emit(core.Access{Addr: m.uniqBase + uniqueIdx(j)*8, Size: 8})
			emit(core.Access{Addr: xBase + uint64(m.ColInd[j])*8, Size: 8, Comp: viCompPerNNZ})
		}
		yw.Touch(emit, int64(i)*8, 8, true, 0)
	}
}
