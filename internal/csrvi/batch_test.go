package csrvi

import (
	"math/rand"
	"testing"

	"spmv/internal/matgen"
)

// widenToVI32 rewrites a matrix's val_ind stream as uint32, so the
// VI32 kernel instantiation gets exercised without needing a matrix
// with > 2^16 genuinely distinct values.
func widenToVI32(m *Matrix) {
	ind := make([]uint32, m.NNZ())
	switch {
	case m.VI8 != nil:
		for k, v := range m.VI8 {
			ind[k] = uint32(v)
		}
	case m.VI16 != nil:
		for k, v := range m.VI16 {
			ind[k] = uint32(v)
		}
	default:
		return
	}
	m.VI8, m.VI16, m.VI32 = nil, nil, ind
}

// TestBatchLoadsValIndOnce is the amortization guarantee behind the
// batched kernel: a k-column multiplication loads each val_ind entry
// exactly once — the load count equals NNZ, independent of k — so one
// unique-table lookup feeds k FMAs.
func TestBatchLoadsValIndOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct {
		name   string
		unique int
		widen  bool
	}{
		{"vi8", 50, false},
		{"vi16", 2000, false},
		{"vi32", 2000, true},
	} {
		c := matgen.RandomUniform(rng, 600, 1<<18, 12, matgen.Values{Unique: tc.unique})
		m, err := FromCOO(c)
		if err != nil {
			t.Fatal(err)
		}
		if tc.widen {
			widenToVI32(m)
		} else {
			wantW := 1
			if tc.unique > 256 {
				wantW = 2
			}
			if m.IndexWidth() != wantW {
				t.Fatalf("%s: built width %d, want %d", tc.name, m.IndexWidth(), wantW)
			}
		}
		ref := make([]float64, m.Rows())
		for _, k := range []int{2, 4, 8} {
			loads := 0
			batchDecodeHook = func(n int) { loads += n }
			y := make([]float64, m.Rows()*k)
			x := make([]float64, m.Cols()*k)
			for i := range x {
				x[i] = rng.Float64()
			}
			m.SpMVBatch(y, x, k)
			batchDecodeHook = nil
			if loads != m.NNZ() {
				t.Errorf("%s k=%d: %d val_ind loads, want %d (one per non-zero)",
					tc.name, k, loads, m.NNZ())
			}
			// Sanity for the widened matrix: column 0 of the panel must
			// match the scalar kernel on the gathered x column.
			xc := make([]float64, m.Cols())
			for j := range xc {
				xc[j] = x[j*k]
			}
			m.SpMV(ref, xc)
			for i, want := range ref {
				if got := y[i*k]; got != want {
					t.Fatalf("%s k=%d: row %d column 0 = %v, want %v", tc.name, k, i, got, want)
					break
				}
			}
		}
	}
}
