package csrvi

import (
	"math"
	"math/rand"
	"testing"

	"spmv/internal/core"
	"spmv/internal/csr"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestConformance(t *testing.T) {
	testmat.CheckFormat(t, func(c *core.COO) (core.Format, error) { return FromCOO(c) })
}

// TestFig4Example checks the value-indexing structure against the
// paper's Fig 4: the Fig 1 matrix has unique values
// (5.4 1.1 6.3 7.7 8.8 2.9 3.7 9.0 4.5) in first-appearance order and
// val_ind (0 1 2 3 4 1 5 6 5 7 1 8 1 5 6 1).
func TestFig4Example(t *testing.T) {
	vals := [][]float64{
		{5.4, 1.1, 0, 0, 0, 0},
		{0, 6.3, 0, 7.7, 0, 8.8},
		{0, 0, 1.1, 0, 0, 0},
		{0, 0, 2.9, 0, 3.7, 2.9},
		{9.0, 0, 0, 1.1, 4.5, 0},
		{1.1, 0, 2.9, 3.7, 0, 1.1},
	}
	c := core.NewCOO(6, 6)
	for i, row := range vals {
		for j, v := range row {
			if v != 0 {
				c.Add(i, j, v)
			}
		}
	}
	m, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	wantUnique := []float64{5.4, 1.1, 6.3, 7.7, 8.8, 2.9, 3.7, 9.0, 4.5}
	wantInd := []uint8{0, 1, 2, 3, 4, 1, 5, 6, 5, 7, 1, 8, 1, 5, 6, 1}
	if len(m.Unique) != len(wantUnique) {
		t.Fatalf("Unique = %v, want %v", m.Unique, wantUnique)
	}
	for i, w := range wantUnique {
		if m.Unique[i] != w {
			t.Fatalf("Unique = %v, want %v", m.Unique, wantUnique)
		}
	}
	if m.IndexWidth() != 1 || m.VI8 == nil {
		t.Fatalf("IndexWidth = %d, want 1", m.IndexWidth())
	}
	for i, w := range wantInd {
		if m.VI8[i] != w {
			t.Fatalf("VI8 = %v, want %v", m.VI8, wantInd)
		}
	}
	if ttu := m.TTU(); math.Abs(ttu-16.0/9.0) > 1e-12 {
		t.Errorf("TTU = %v, want 16/9", ttu)
	}
}

func TestIndexWidthSelection(t *testing.T) {
	build := func(unique int) *Matrix {
		c := core.NewCOO(1, unique+10)
		for j := 0; j < unique; j++ {
			c.Add(0, j, float64(j+1))
		}
		c.Finalize()
		m, err := FromCOO(c)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if w := build(256).IndexWidth(); w != 1 {
		t.Errorf("256 unique -> width %d, want 1", w)
	}
	if w := build(257).IndexWidth(); w != 2 {
		t.Errorf("257 unique -> width %d, want 2", w)
	}
	// 2^16 boundary: synthesize >65536 unique values cheaply.
	c := core.NewCOO(70, 1000)
	v := 0.5
	for i := 0; i < 70; i++ {
		for j := 0; j < 1000; j++ {
			v += 1.0
			c.Add(i, j, v)
		}
	}
	c.Finalize()
	m, _ := FromCOO(c)
	if m.IndexWidth() != 4 {
		t.Errorf("70000 unique -> width %d, want 4", m.IndexWidth())
	}
}

func TestSizeBytesFormulaAndReduction(t *testing.T) {
	// Stencil matrix: 2 unique values, ttu huge -> big reduction.
	c := matgen.Stencil2D(40)
	m, _ := FromCOO(c)
	ref, _ := csr.FromCOO(c)
	want := int64(m.Rows()+1)*4 + int64(m.NNZ())*4 + int64(m.NNZ())*1 + int64(len(m.Unique))*8
	if m.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", m.SizeBytes(), want)
	}
	if !m.Applicable() {
		t.Error("stencil matrix should be CSR-VI applicable")
	}
	// values 8B -> val_ind 1B: matrix shrinks by ~7 bytes/nnz.
	saved := ref.SizeBytes() - m.SizeBytes()
	perNNZ := float64(saved) / float64(m.NNZ())
	if perNNZ < 6.5 {
		t.Errorf("saved %.2f bytes/nnz, want ~7", perNNZ)
	}
}

func TestNotApplicableOnRandomValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := matgen.RandomUniform(rng, 300, 300, 6, matgen.Values{})
	m, _ := FromCOO(c)
	if m.Applicable() {
		t.Errorf("all-distinct values reported applicable (ttu=%v)", m.TTU())
	}
	if m.TTU() > 1.001 {
		t.Errorf("TTU = %v, want ~1", m.TTU())
	}
}

func TestSignedZerosDistinct(t *testing.T) {
	c := core.NewCOO(1, 2)
	c.Add(0, 0, math.Copysign(0, -1))
	c.Add(0, 1, 0)
	c.Finalize()
	m, _ := FromCOO(c)
	if len(m.Unique) != 2 {
		t.Errorf("expected +0 and -0 distinct, got %d unique", len(m.Unique))
	}
}

func TestTTUEmptyMatrix(t *testing.T) {
	c := core.NewCOO(3, 3)
	c.Finalize()
	m, _ := FromCOO(c)
	if m.TTU() != 0 || m.Applicable() {
		t.Errorf("empty matrix: TTU=%v Applicable=%v", m.TTU(), m.Applicable())
	}
}

func TestSpMVAllWidthsMatchCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, unique := range []int{3, 200, 300, 70000} {
		c := matgen.RandomUniform(rng, 200, 500, 9, matgen.Values{Unique: unique})
		m, _ := FromCOO(c)
		ref, _ := csr.FromCOO(c)
		x := testmat.RandVec(rng, 500)
		y1 := make([]float64, 200)
		y2 := make([]float64, 200)
		m.SpMV(y1, x)
		ref.SpMV(y2, x)
		testmat.AssertClose(t, "SpMV", y1, y2, 1e-12)
	}
}

func TestTraceEmitsUniqueGathers(t *testing.T) {
	c := matgen.Stencil2D(10)
	m, _ := FromCOO(c)
	a := core.NewArena()
	m.Place(a)
	xBase := a.Alloc(int64(m.Cols()) * 8)
	yBase := a.Alloc(int64(m.Rows()) * 8)
	var uniqueHits int
	for _, ch := range m.Split(2) {
		ch.(core.Tracer).TraceSpMV(xBase, yBase, func(acc core.Access) {
			if acc.Addr >= m.uniqBase && acc.Addr < m.uniqBase+uint64(len(m.Unique))*8 {
				uniqueHits++
			}
		})
	}
	if uniqueHits != m.NNZ() {
		t.Errorf("unique-table gathers = %d, want %d", uniqueHits, m.NNZ())
	}
}

func BenchmarkSpMVStencilVI(b *testing.B) {
	m, _ := FromCOO(matgen.Stencil2D(128))
	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.SetBytes(m.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMV(y, x)
	}
}
