// Package csrvi implements CSR-VI (CSR Value Index), the value
// compression scheme of the paper's §V.
//
// The values array of CSR is replaced by two arrays: vals_unique, which
// holds each distinct numerical value once, and val_ind, which holds for
// every non-zero the index of its value in vals_unique. The index width
// is the narrowest of 1/2/4 bytes that addresses the unique count, so
// for matrices with few distinct values the 8-byte value stream shrinks
// to 1-2 bytes per non-zero — and values are 2/3 of the CSR working set.
//
// The scheme only pays off when the total-to-unique ratio (ttu) is
// high; the paper uses the empirical criterion ttu > 5 (§VI-E). TTU and
// Applicable expose that test. Construction uses a hash table and is
// O(nnz), as in the paper.
package csrvi

import (
	"fmt"
	"math"

	"spmv/internal/core"
	"spmv/internal/partition"
)

// Matrix is a sparse matrix in CSR-VI form. Structure (RowPtr, ColInd)
// is standard CSR; values are indirected through Unique.
type Matrix struct {
	rows, cols int
	RowPtr     []int32
	ColInd     []int32
	Unique     []float64
	// Exactly one of VI8/VI16/VI32 is non-nil, chosen by len(Unique).
	VI8  []uint8
	VI16 []uint16
	VI32 []uint32

	rowPtrBase, colIndBase, viBase, uniqBase uint64
}

var (
	_ core.Format   = (*Matrix)(nil)
	_ core.Splitter = (*Matrix)(nil)
	_ core.Placer   = (*Matrix)(nil)
)

// FromCOO encodes a triplet matrix into CSR-VI. The COO is finalized in
// place if needed. Unique values are numbered in order of first
// appearance. Distinctness is on the bit pattern of the float64, so
// +0 and -0 are distinct (they multiply identically, so this is safe).
func FromCOO(c *core.COO) (*Matrix, error) {
	c.Finalize()
	if c.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("csrvi: %d non-zeros exceed supported range", c.Len())
	}
	m := &Matrix{
		rows:   c.Rows(),
		cols:   c.Cols(),
		RowPtr: make([]int32, c.Rows()+1),
		ColInd: make([]int32, c.Len()),
	}
	index := make(map[uint64]uint32)
	ind := make([]uint32, c.Len())
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		m.RowPtr[i+1]++
		m.ColInd[k] = int32(j)
		bits := math.Float64bits(v)
		vi, ok := index[bits]
		if !ok {
			vi = uint32(len(m.Unique))
			index[bits] = vi
			m.Unique = append(m.Unique, v)
		}
		ind[k] = vi
	}
	for i := 0; i < c.Rows(); i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	// Pick the narrowest index width that addresses the unique count.
	switch uv := len(m.Unique); {
	case uv <= 1<<8:
		m.VI8 = make([]uint8, len(ind))
		for k, v := range ind {
			m.VI8[k] = uint8(v)
		}
	case uv <= 1<<16:
		m.VI16 = make([]uint16, len(ind))
		for k, v := range ind {
			m.VI16[k] = uint16(v)
		}
	default:
		m.VI32 = ind
	}
	return m, nil
}

// TTU returns the total-to-unique values ratio of the encoded matrix.
func (m *Matrix) TTU() float64 {
	if len(m.Unique) == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(len(m.Unique))
}

// MinTTU is the paper's empirical applicability threshold (§VI-E).
const MinTTU = 5.0

// Applicable reports whether CSR-VI is worthwhile for the matrix per
// the paper's ttu > 5 criterion.
func (m *Matrix) Applicable() bool { return m.TTU() > MinTTU }

// IndexWidth returns the val_ind element width in bytes (1, 2 or 4).
func (m *Matrix) IndexWidth() int {
	switch {
	case m.VI8 != nil:
		return 1
	case m.VI16 != nil:
		return 2
	default:
		return 4
	}
}

// ValIndBytes returns the size of the val_ind stream: one IndexWidth
// entry per non-zero. This is the stream that replaces the 8-byte
// values of CSR — the quantity §V shrinks.
func (m *Matrix) ValIndBytes() int64 {
	return int64(m.NNZ()) * int64(m.IndexWidth())
}

// Name implements core.Format.
func (m *Matrix) Name() string { return "csr-vi" }

// Rows implements core.Format.
func (m *Matrix) Rows() int { return m.rows }

// Cols implements core.Format.
func (m *Matrix) Cols() int { return m.cols }

// NNZ implements core.Format.
func (m *Matrix) NNZ() int { return len(m.ColInd) }

// SizeBytes implements core.Format: row_ptr + col_ind + val_ind + unique.
func (m *Matrix) SizeBytes() int64 {
	return int64(m.rows+1)*core.IdxSize +
		int64(m.NNZ())*core.IdxSize +
		int64(m.NNZ())*int64(m.IndexWidth()) +
		int64(len(m.Unique))*core.ValSize
}

// SpMV computes y = A*x with the paper's Fig 5 kernel: the direct value
// access is replaced by vals_unique[val_ind[j]].
func (m *Matrix) SpMV(y, x []float64) { m.spmvRange(y, x, 0, m.rows) }

func (m *Matrix) spmvRange(y, x []float64, lo, hi int) {
	// One loop per index width keeps the inner loop monomorphic. Each
	// row subslices the value-index and column streams once so the
	// per-nnz bounds checks collapse to the two data-dependent table
	// lookups (Unique[id] and x[col]).
	switch {
	case m.VI8 != nil:
		for i := lo; i < hi; i++ {
			vi := m.VI8[m.RowPtr[i]:m.RowPtr[i+1]]
			cols := m.ColInd[m.RowPtr[i]:m.RowPtr[i+1]]
			cols = cols[:len(vi)]
			sum := 0.0
			for k, id := range vi {
				sum += m.Unique[id] * x[cols[k]]
			}
			y[i] = sum
		}
	case m.VI16 != nil:
		for i := lo; i < hi; i++ {
			vi := m.VI16[m.RowPtr[i]:m.RowPtr[i+1]]
			cols := m.ColInd[m.RowPtr[i]:m.RowPtr[i+1]]
			cols = cols[:len(vi)]
			sum := 0.0
			for k, id := range vi {
				sum += m.Unique[id] * x[cols[k]]
			}
			y[i] = sum
		}
	default:
		for i := lo; i < hi; i++ {
			vi := m.VI32[m.RowPtr[i]:m.RowPtr[i+1]]
			cols := m.ColInd[m.RowPtr[i]:m.RowPtr[i+1]]
			cols = cols[:len(vi)]
			sum := 0.0
			for k, id := range vi {
				sum += m.Unique[id] * x[cols[k]]
			}
			y[i] = sum
		}
	}
}

// Value returns the k-th stored value (resolving the indirection).
func (m *Matrix) Value(k int) float64 {
	switch {
	case m.VI8 != nil:
		return m.Unique[m.VI8[k]]
	case m.VI16 != nil:
		return m.Unique[m.VI16[k]]
	default:
		return m.Unique[m.VI32[k]]
	}
}

// ForEach calls fn for every non-zero in row-major order.
func (m *Matrix) ForEach(fn func(i, j int, v float64)) {
	for i := 0; i < m.rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			fn(i, int(m.ColInd[k]), m.Value(int(k)))
		}
	}
}

// Triplets converts back to finalized COO form: the inverse of FromCOO.
func (m *Matrix) Triplets() *core.COO {
	c := core.NewCOO(m.rows, m.cols)
	m.ForEach(func(i, j int, v float64) { c.Add(i, j, v) })
	c.Finalize()
	return c
}

// Split implements core.Splitter: the multithreaded version is derived
// from the serial one by giving each thread its first and last row
// (paper §V).
func (m *Matrix) Split(n int) []core.Chunk {
	bounds := partition.SplitRowsByNNZ(m.RowPtr, n)
	var chunks []core.Chunk
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] == bounds[i+1] {
			continue
		}
		chunks = append(chunks, &chunk{m: m, lo: bounds[i], hi: bounds[i+1]})
	}
	return chunks
}

type chunk struct {
	m      *Matrix
	lo, hi int
}

var _ core.Tracer = (*chunk)(nil)

func (c *chunk) RowRange() (int, int) { return c.lo, c.hi }
func (c *chunk) NNZ() int             { return int(c.m.RowPtr[c.hi] - c.m.RowPtr[c.lo]) }
func (c *chunk) SpMV(y, x []float64)  { c.m.spmvRange(y, x, c.lo, c.hi) }
