package csrvi

import "spmv/internal/core"

// Batched SpMV (SpMM) for CSR-VI: one val_ind load and one unique-table
// lookup serve k FMAs. The value stream is the part of the working set
// CSR-VI compresses, and batching amortizes the residual stream — and
// the indirection work itself — over every panel column at once.

var (
	_ core.BatchFormat = (*Matrix)(nil)
	_ core.BatchChunk  = (*chunk)(nil)
)

// batchDecodeHook, when non-nil, receives the number of val_ind loads
// one batch-kernel call performed. It is the test hook behind the
// amortization claim: a k-column batch must load each value index once
// (loads == chunk nnz), not once per column. Nil outside tests; the
// kernel pays one nil check per call.
var batchDecodeHook func(loads int)

// SpMVBatch implements core.BatchFormat. len(x) >= Cols()*k,
// len(y) >= Rows()*k; k = 1 is bitwise identical to SpMV.
func (m *Matrix) SpMVBatch(y, x []float64, k int) {
	m.spmvBatchRange(y, x, 0, m.rows, k)
}

// SpMVBatch implements core.BatchChunk.
func (c *chunk) SpMVBatch(y, x []float64, k int) {
	c.m.spmvBatchRange(y, x, c.lo, c.hi, k)
}

func (m *Matrix) spmvBatchRange(y, x []float64, lo, hi, k int) {
	switch {
	case k == 1:
		// The panel degenerates to the vector; the scalar kernel's
		// operation order is the bitwise-k=1 contract.
		m.spmvRange(y, x, lo, hi)
		return
	case k <= 0:
		panic(core.Usagef("csrvi: batch with non-positive vector count %d", k))
	}
	// One monomorphic instantiation per index width, as in spmvRange.
	var loads int
	switch {
	case m.VI8 != nil:
		loads = spmvBatchVI(y, x, m.RowPtr, m.ColInd, m.VI8, m.Unique, lo, hi, k)
	case m.VI16 != nil:
		loads = spmvBatchVI(y, x, m.RowPtr, m.ColInd, m.VI16, m.Unique, lo, hi, k)
	default:
		loads = spmvBatchVI(y, x, m.RowPtr, m.ColInd, m.VI32, m.Unique, lo, hi, k)
	}
	if batchDecodeHook != nil {
		batchDecodeHook(loads)
	}
}

// spmvBatchVI is the fused batch kernel over one val_ind width. It
// returns the number of val_ind loads performed (exactly the chunk's
// nnz: each load's resolved value feeds all k columns).
func spmvBatchVI[T uint8 | uint16 | uint32](y, x []float64, rowPtr, colInd []int32, valInd []T, unique []float64, lo, hi, k int) int {
	loads := 0
	if k == 4 {
		for i := lo; i < hi; i++ {
			vi := valInd[rowPtr[i]:rowPtr[i+1]]
			cols := colInd[rowPtr[i]:rowPtr[i+1]]
			cols = cols[:len(vi)]
			var s0, s1, s2, s3 float64
			for p, id := range vi {
				v := unique[id]
				xr := x[int(cols[p])*4:]
				xr = xr[:4]
				s0 += v * xr[0]
				s1 += v * xr[1]
				s2 += v * xr[2]
				s3 += v * xr[3]
			}
			yr := y[i*4:]
			yr = yr[:4]
			yr[0], yr[1], yr[2], yr[3] = s0, s1, s2, s3
			loads += len(vi)
		}
		return loads
	}
	for i := lo; i < hi; i++ {
		vi := valInd[rowPtr[i]:rowPtr[i+1]]
		cols := colInd[rowPtr[i]:rowPtr[i+1]]
		cols = cols[:len(vi)]
		yr := y[i*k:]
		yr = yr[:k]
		for c := range yr {
			yr[c] = 0
		}
		for p, id := range vi {
			v := unique[id]
			xr := x[int(cols[p])*k:]
			xr = xr[:len(yr)]
			for c, xv := range xr {
				yr[c] += v * xv
			}
		}
		loads += len(vi)
	}
	return loads
}
