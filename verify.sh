#!/bin/sh
# Repo verification gate: static checks, the full test suite under the
# race detector, and a short fuzz smoke over the decode-hardening
# targets. Set FUZZTIME to lengthen the fuzz phase (default 30s per
# target); FUZZTIME=0 skips it.
set -eu

cd "$(dirname "$0")"

FUZZTIME="${FUZZTIME:-30s}"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== race"
# Second pass over the concurrency-heavy packages: persistent-worker
# executors and the telemetry layer (collectors report from worker
# goroutines while readers snapshot concurrently). -count=2 defeats
# the test cache and catches ordering-dependent races. internal/sym
# rides along for the tree-reduced scatter executor's bitwise test.
go test -race -count=2 ./internal/parallel/... ./internal/obs/... ./internal/sym/...

echo "== spmvbench -rhs smoke"
# Batched multi-vector path end to end: fused kernels + RunBatch +
# the RHS sweep printer, at a scale that finishes in seconds.
go run ./cmd/spmvbench -rhs 4 -scale 0.02 -iters 2 -threads 2 > /dev/null

echo "== spmvbench -profile smoke"
# Structural profiling end to end: builds the cell, measures it, and
# emits the FormatProfile JSON with bandwidth attribution.
go run ./cmd/spmvbench -profile -format csr-du -scale 0.02 -iters 2 -threads 2 > /dev/null

echo "== spmvbench archive/compare smoke"
# Benchmark archive round trip: write a tiny archive, then compare a
# fresh run against it. The 10x slowdown threshold checks the plumbing
# (load, match, t-test, verdict printing), not the host's noise floor.
ARCHDIR=$(mktemp -d)
trap 'rm -rf "$ARCHDIR"' EXIT
go run ./cmd/spmvbench -scale 0.02 -iters 2 -threads 2 -samples 2 \
	-archive "$ARCHDIR" > /dev/null
go run ./cmd/spmvbench -scale 0.02 -iters 2 -threads 2 -samples 2 \
	-slowdown 10 -compare "$ARCHDIR"/BENCH_*.json > /dev/null

echo "== spmvbench -auto smoke"
# Autotuner end to end: feature extraction, analytic ranking, a short
# measured probe stage, the chosen format built and structurally
# verified (the command exits non-zero if the tuned build fails
# Verify), and the TuneReport decision traces emitted as JSON with the
# probe timings recorded into the archive from the previous smoke.
go run ./cmd/spmvbench -auto -matrix blockdiag-s-q16,random-s \
	-autobudget 200ms -scale 0.02 -threads 2 \
	-archive "$ARCHDIR" > "$ARCHDIR/auto.json" 2> /dev/null
grep -q '"chosen"' "$ARCHDIR/auto.json" || {
	echo "verify.sh: spmvbench -auto produced no TuneReport" >&2
	exit 1
}

echo "== spmvbench roofline smoke"
# Roofline end to end: a budgeted STREAM probe writes ROOF_<host>.json,
# then a measured run is anchored to it — the table must carry the
# %roof column and name the probe as its model source.
go run ./cmd/spmvbench -roofprobe -probe-ms 300 -threads 2 \
	-roofdir "$ARCHDIR" > /dev/null
go run ./cmd/spmvbench -roofline -roofdir "$ARCHDIR" \
	-scale 0.02 -iters 2 -threads 2 -experiment table2 \
	> "$ARCHDIR/roofline.txt"
grep -q '%roof' "$ARCHDIR/roofline.txt" || {
	echo "verify.sh: spmvbench -roofline printed no %roof column" >&2
	exit 1
}
grep -q 'model: probe' "$ARCHDIR/roofline.txt" || {
	echo "verify.sh: spmvbench -roofline did not use the probe archive" >&2
	exit 1
}

echo "== spmvd selfcheck"
# Server smoke, end to end over real TCP against a loopback daemon:
# upload admitted and queryable, multiply matches the reference
# product, corrupt upload rejected with 400, deterministic overload
# sheds with 429, and SIGTERM drains cleanly (the real signal path —
# the daemon signals itself).
go run ./cmd/spmvd -selfcheck -quiet

echo "== server soak (race)"
# The fault-injection soak under the race detector: sustained
# overload with injected kernel panics, corrupt uploads and client
# disconnects must shed load, recover every panic, leak no goroutines
# and drain cleanly.
go test -race -run "^TestSoakFaultInjection$" ./internal/server/

echo "== spmvlint"
# Layer 1: the ten-rule source suite — syntactic/type rules (panics,
# verifier, droppederr, floateq, hotpath) plus the CFG-based
# concurrency rules (lockbalance, goroleak, ctxflow, wgbalance,
# deferloop). Layer 2: compile gate diffing -m=1 -d=ssa/check_bce
# diagnostics against the checked-in baselines — a new bounds check or
# heap allocation in a hot kernel fails here. Layer 3: alloc gate —
# any new request-path heap allocation in internal/server or
# internal/parallel fails. Stale allowlist entries also fail.
go run ./cmd/spmvlint ./...

if [ "$FUZZTIME" != "0" ]; then
	# Each fuzz target asserts: if the decoder accepts the input, the
	# matrix verifies clean and its SpMV matches the reference CSR.
	# Note: the server target's exec counter can look frozen for up to
	# a minute at a time — that is the fuzz engine minimizing a new
	# interesting input (default -fuzzminimizetime=60s), not a hang.
	for target in \
		"spmv/internal/csrdu FuzzFromRaw" \
		"spmv/internal/dcsr FuzzFromRaw" \
		"spmv/internal/matfile FuzzRead" \
		"spmv/internal/server FuzzServeUpload"; do
		pkg=${target% *}
		fn=${target#* }
		echo "== go test -fuzz=$fn -fuzztime=$FUZZTIME $pkg"
		go test -run "^$fn\$" -fuzz "^$fn\$" -fuzztime "$FUZZTIME" "$pkg"
	done
fi

echo "verify.sh: all checks passed"
