// Compression study: how much each storage scheme shrinks each matrix
// class — the static side of the paper's argument (§IV/§V). Prints a
// per-matrix, per-format size table over the suite generators plus the
// CSR-DU unit mix, showing where delta encoding and value indexing do
// and do not pay.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"spmv"
	"spmv/internal/core"
	"spmv/internal/csrdu"
	"spmv/internal/matgen"
)

func main() {
	scale := flag.Int("n", 20000, "base matrix dimension")
	flag.Parse()
	n := *scale

	mats := []struct {
		name string
		c    *core.COO
	}{
		{"stencil2d", matgen.Stencil2D(isqrt(n * 5))},
		{"banded", matgen.Banded(rand.New(rand.NewSource(1)), n, 40, 8, matgen.Values{})},
		{"banded-q64", matgen.Banded(rand.New(rand.NewSource(2)), n, 40, 8, matgen.Values{Unique: 64})},
		{"random", matgen.RandomUniform(rand.New(rand.NewSource(3)), n, n, 8, matgen.Values{})},
		{"powerlaw", matgen.PowerLaw(rand.New(rand.NewSource(4)), n, 8, 0.8, matgen.Values{})},
		{"blockdiag", matgen.BlockDiag(rand.New(rand.NewSource(5)), n/8, 8, matgen.Values{Unique: 8})},
		{"femlike-q", matgen.FEMLike(rand.New(rand.NewSource(6)), n, 6, matgen.Values{Unique: 100})},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "matrix\tnnz\tttu\tcsr16\tcsr-du\t+rle\tcsr-vi\tdu-vi\tdcsr\tbcsr2x2\tdu units (u8/u16/u32)")
	for _, m := range mats {
		base, err := spmv.NewCSR(m.c)
		if err != nil {
			panic(err)
		}
		pct := func(f spmv.Format, err error) string {
			if err != nil {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(f.SizeBytes())/float64(base.SizeBytes()))
		}
		du, _ := spmv.NewCSRDU(m.c)
		st := du.Stats()
		c16 := "-"
		if m.c.Cols() <= 1<<16 {
			c16 = pct(spmv.NewCSR16(m.c))
		}
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d/%d/%d\n",
			m.name, m.c.Len(), matgen.TTU(m.c),
			c16,
			pct(du, nil),
			pct(spmv.NewCSRDUOpts(m.c, spmv.DUOptions{RLE: true})),
			pct(spmv.NewCSRVI(m.c)),
			pct(spmv.NewCSRDUVI(m.c)),
			pct(spmv.NewDCSR(m.c)),
			pct(spmv.NewBCSR(m.c, 2, 2)),
			st.PerClass[csrdu.ClassU8], st.PerClass[csrdu.ClassU16], st.PerClass[csrdu.ClassU32],
		)
	}
	w.Flush()
	fmt.Println("\n(sizes as % of 32-bit-index CSR; value data is 2/3 of CSR, which bounds")
	fmt.Println(" index-only schemes at ~67% while csr-vi can reach ~40% and du-vi ~15%)")
}

func isqrt(n int) int {
	k := 1
	for k*k < n {
		k++
	}
	return k
}
