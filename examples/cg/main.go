// Conjugate-gradient Poisson solver: the workload that motivates the
// paper (§I — SpMV is the kernel of iterative solvers). Solves the
// 2D Poisson equation on an n×n grid with CSR and with CSR-VI, and
// reports the solver-level effect of value compression: same iterates,
// smaller working set per iteration.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"spmv"
	"spmv/internal/matgen"
)

func main() {
	n := flag.Int("n", 384, "grid side (matrix is n^2 x n^2)")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	flag.Parse()

	c := matgen.Stencil2D(*n)
	rows := c.Rows()
	fmt.Printf("2D Poisson: grid %dx%d, matrix %dx%d, %d nnz, ws %.1f MB\n",
		*n, *n, rows, rows, c.Len(), float64(spmv.WorkingSet(c))/(1<<20))

	// Right-hand side: a point source in the middle of the domain.
	b := make([]float64, rows)
	b[rows/2+*n/2] = 1

	threads := runtime.GOMAXPROCS(0)
	solve := func(f spmv.Format) (spmv.SolveResult, []float64, time.Duration) {
		e, err := spmv.NewExecutor(f, threads)
		if err != nil {
			log.Fatal(err)
		}
		defer e.Close()
		op := spmv.NewParallelOperator(e, rows)
		x := make([]float64, rows)
		start := time.Now()
		res, err := spmv.CG(op, b, x, *tol, 10*rows)
		if err != nil {
			log.Fatal(err)
		}
		return res, x, time.Since(start)
	}

	base, err := spmv.NewCSR(c)
	if err != nil {
		log.Fatal(err)
	}
	vi, err := spmv.NewCSRVI(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("csr-vi: %d unique values, %.0f%% of CSR size\n",
		len(vi.Unique), 100*spmv.CompressionRatio(vi))

	for _, f := range []spmv.Format{base, vi} {
		res, x, dt := solve(f)
		fmt.Printf("%-8s converged=%-5v iters=%-5d residual=%.2e time=%v (%d threads)\n",
			f.Name(), res.Converged, res.Iterations, res.Residual, dt.Round(time.Millisecond), threads)
		// Sanity: the solution peaks at the source.
		peak, at := 0.0, 0
		for i, v := range x {
			if math.Abs(v) > peak {
				peak, at = math.Abs(v), i
			}
		}
		fmt.Printf("         solution peak %.4g at row %d (source at %d)\n", peak, at, rows/2+*n/2)
	}
}
