// PageRank: the paper's conclusion argues its compression methodology
// extends to "memory intensive problems (e.g. graph ... algorithms)".
// This example takes it literally: PageRank is a repeated SpMV against
// a scale-free web-graph matrix, and the normalized edge weights 1/deg
// have few distinct values — exactly CSR-VI territory. We build the
// Google matrix both ways, run power iteration, and compare.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"time"

	"spmv"
	"spmv/internal/matgen"
)

func main() {
	n := flag.Int("n", 200000, "number of pages")
	damping := flag.Float64("d", 0.85, "damping factor")
	tol := flag.Float64("tol", 1e-9, "L1 convergence tolerance")
	flag.Parse()

	// Scale-free link graph: entry (i, j) means page j links to page i
	// after the transpose below.
	rng := rand.New(rand.NewSource(99))
	links := matgen.PowerLaw(rng, *n, 12, 0.7, matgen.Values{})

	// Column-stochastic transition matrix: M[i][j] = 1/outdeg(j) for
	// each link j -> i. Out-degrees are small integers, so 1/outdeg
	// takes few distinct values: high ttu by construction.
	outdeg := links.RowCounts()
	google := spmv.NewCOO(*n, *n)
	for k := 0; k < links.Len(); k++ {
		j, i, _ := links.At(k) // row j links to column i; transpose on the fly
		google.Add(i, j, 1/float64(outdeg[j]))
	}
	google.Finalize()

	base, err := spmv.NewCSR(google)
	if err != nil {
		log.Fatal(err)
	}
	vi, err := spmv.NewCSRVI(google)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("google matrix: %d pages, %d links, ws %.1f MB\n",
		*n, google.Len(), float64(spmv.WorkingSet(google))/(1<<20))
	fmt.Printf("csr-vi: ttu %.0f (%d unique weights), %.0f%% of CSR size\n",
		vi.TTU(), len(vi.Unique), 100*spmv.CompressionRatio(vi))

	threads := runtime.GOMAXPROCS(0)
	for _, f := range []spmv.Format{base, vi} {
		rank, iters, dt := pagerank(f, *damping, *tol, threads)
		top, val := argmax(rank)
		fmt.Printf("%-8s %3d iterations in %-12v top page %d (rank %.3g) on %d threads\n",
			f.Name(), iters, dt.Round(time.Millisecond), top, val, threads)
	}
}

// pagerank runs power iteration: r' = d*M*r + (1-d+d*dangling)/n.
func pagerank(m spmv.Format, d, tol float64, threads int) ([]float64, int, time.Duration) {
	n := m.Rows()
	e, err := spmv.NewExecutor(m, threads)
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	r := make([]float64, n)
	next := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	start := time.Now()
	for iter := 1; ; iter++ {
		if err := e.Run(next, r); err != nil {
			log.Fatal(err)
		}
		// Mass lost to dangling pages (all-zero columns) plus teleport.
		var sum float64
		for _, v := range next {
			sum += v
		}
		correction := (1 - d*sum) / float64(n)
		var delta float64
		for i := range next {
			v := d*next[i] + correction
			delta += math.Abs(v - r[i])
			next[i] = v
		}
		r, next = next, r
		if delta < tol || iter >= 1000 {
			return r, iter, time.Since(start)
		}
	}
}

func argmax(x []float64) (int, float64) {
	best, bv := 0, math.Inf(-1)
	for i, v := range x {
		if v > bv {
			best, bv = i, v
		}
	}
	return best, bv
}
