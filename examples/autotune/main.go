// Autotune: analyze matrices, take the advisor's format recommendation,
// verify it empirically, and show the RCM-reordering synergy — ordering
// the matrix first makes the index compression strictly better.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"spmv"
	"spmv/internal/matgen"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	mats := map[string]*spmv.COO{
		"stencil (PDE)":     matgen.Stencil2D(200),
		"banded, 64 values": matgen.Banded(rng, 40000, 30, 8, matgen.Values{Unique: 64}),
		"scattered random":  matgen.RandomUniform(rng, 30000, 30000, 8, matgen.Values{}),
		"shuffled banded":   shuffle(rng, matgen.Symmetrize(matgen.Banded(rng, 30000, 8, 6, matgen.Values{}))),
	}

	for name, c := range mats {
		fmt.Printf("== %s: %dx%d, %d nnz ==\n", name, c.Rows(), c.Cols(), c.Len())
		a := spmv.Analyze(c)
		fmt.Printf("   ttu %.0f | %.0f%% one-byte deltas | %d diagonals | symmetric %v\n",
			a.TTU, 100*a.DeltaFrac[0], a.Diagonals, a.Symmetric)
		recs := a.Recommend()
		for i, r := range recs {
			if i == 3 {
				break
			}
			fmt.Printf("   advisor #%d: %-9s predicted %5.1f%% of CSR — %s\n",
				i+1, r.Format, 100*r.Ratio, r.Reason)
		}
		// Verify the top recommendation empirically where buildable.
		if f := build(recs[0].Format, c); f != nil {
			fmt.Printf("   measured: %s is %.1f%% of CSR, serial SpMV %v\n",
				f.Name(), 100*spmv.CompressionRatio(f), timeSpMV(f))
		}
		fmt.Println()
	}

	// RCM synergy on the shuffled matrix.
	mess := mats["shuffled banded"]
	perm, err := spmv.RCM(mess)
	if err != nil {
		log.Fatal(err)
	}
	tidy, _ := spmv.PermuteMatrix(mess, perm)
	before, _ := spmv.NewCSRDU(mess)
	after, _ := spmv.NewCSRDU(tidy)
	fmt.Printf("== RCM synergy (shuffled banded) ==\n")
	fmt.Printf("   bandwidth %d -> %d\n", spmv.Bandwidth(mess), spmv.Bandwidth(tidy))
	fmt.Printf("   csr-du size %.1f%% -> %.1f%% of CSR\n",
		100*spmv.CompressionRatio(before), 100*spmv.CompressionRatio(after))
}

func shuffle(rng *rand.Rand, c *spmv.COO) *spmv.COO {
	perm := make([]int32, c.Rows())
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
	out, err := spmv.PermuteMatrix(c, perm)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func build(format string, c *spmv.COO) spmv.Format {
	var f spmv.Format
	var err error
	switch format {
	case "csr":
		f, err = spmv.NewCSR(c)
	case "csr16":
		f, err = spmv.NewCSR16(c)
	case "csr-du":
		f, err = spmv.NewCSRDU(c)
	case "csr-vi":
		f, err = spmv.NewCSRVI(c)
	case "csr-du-vi":
		f, err = spmv.NewCSRDUVI(c)
	case "cds":
		f, err = spmv.NewCDS(c)
	case "ell":
		f, err = spmv.NewELL(c)
	case "sym-csr":
		f, err = spmv.NewSymCSR(c, 1e-12)
	default:
		return nil
	}
	if err != nil {
		return nil
	}
	return f
}

func timeSpMV(f spmv.Format) time.Duration {
	x := make([]float64, f.Cols())
	y := make([]float64, f.Rows())
	for i := range x {
		x[i] = 1
	}
	f.SpMV(y, x) // warm
	const iters = 5
	start := time.Now()
	for i := 0; i < iters; i++ {
		f.SpMV(y, x)
	}
	return time.Since(start) / iters
}
