// Convection-diffusion solve: the unstructured-CFD workload class the
// paper's introduction cites (Anderson et al. [6]) — a nonsymmetric
// system driven by GMRES/BiCGSTAB, here with an ILU(0) preconditioner
// and a compressed matrix format. Demonstrates the full solver stack:
// assemble → analyze → compress → precondition → solve.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"spmv"
	"spmv/internal/matgen"
)

func main() {
	n := flag.Int("n", 128, "grid side (matrix is n^2 x n^2)")
	cx := flag.Float64("cx", 0.6, "convection strength (x direction)")
	tol := flag.Float64("tol", 1e-9, "relative residual tolerance")
	flag.Parse()

	// Discretized -Δu + c·∇u on an n×n grid: Poisson plus an upwind
	// convection term that breaks symmetry.
	diff := matgen.Stencil2D(*n)
	c := spmv.NewCOO(diff.Rows(), diff.Cols())
	for k := 0; k < diff.Len(); k++ {
		i, j, v := diff.At(k)
		switch j {
		case i + 1:
			v += *cx
		case i - 1:
			v -= *cx
		}
		c.Add(i, j, v)
	}
	rows := c.Rows()
	fmt.Printf("convection-diffusion: %dx%d, %d nnz\n", rows, rows, c.Len())

	// Compress: the stencil coefficients take few distinct values.
	a := spmv.Analyze(c)
	fmt.Printf("analysis: ttu %.0f, %.0f%% one-byte deltas -> advisor says %s\n",
		a.TTU, 100*a.DeltaFrac[0], a.Recommend()[0].Format)
	m, err := spmv.NewCSRDUVI(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("csr-du-vi: %.1f%% of CSR\n", 100*spmv.CompressionRatio(m))
	op, err := spmv.NewOperator(m)
	if err != nil {
		log.Fatal(err)
	}

	b := make([]float64, rows)
	b[rows/2] = 1 // point source

	// Plain GMRES.
	x1 := make([]float64, rows)
	start := time.Now()
	plain, err := spmv.GMRES(op, b, x1, 40, *tol, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GMRES(40)        : %5d matvecs, residual %.2e, %v\n",
		plain.Iterations, plain.Residual, time.Since(start).Round(time.Millisecond))

	// ILU(0)-preconditioned GMRES (right preconditioning).
	ilu, err := spmv.NewILU0(c)
	if err != nil {
		log.Fatal(err)
	}
	pop, finish := spmv.RightPreconditioned(op, ilu)
	u := make([]float64, rows)
	start = time.Now()
	pre, err := spmv.GMRES(pop, b, u, 40, *tol, 100000)
	if err != nil {
		log.Fatal(err)
	}
	x2 := finish(u)
	fmt.Printf("ILU(0)+GMRES(40) : %5d matvecs, residual %.2e, %v\n",
		pre.Iterations, pre.Residual, time.Since(start).Round(time.Millisecond))

	// BiCGSTAB for comparison.
	x3 := make([]float64, rows)
	start = time.Now()
	bi, err := spmv.BiCGSTAB(op, b, x3, *tol, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BiCGSTAB         : %5d matvecs, residual %.2e, %v\n",
		bi.Iterations, bi.Residual, time.Since(start).Round(time.Millisecond))

	// All three must agree.
	fmt.Printf("solution agreement: |x_gmres - x_ilu| = %.2e, |x_gmres - x_bicg| = %.2e\n",
		maxDiff(x1, x2), maxDiff(x1, x3))
}

func maxDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
