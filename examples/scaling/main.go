// Thread-scaling study: the paper's headline claim, live on your
// machine. Runs CSR, CSR-DU and CSR-VI at 1..GOMAXPROCS threads over a
// memory-bound matrix and prints speedup curves: compression should
// help more as threads contend for bandwidth, even if serial is not
// faster (paper §VI-D/E).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"spmv"
	"spmv/internal/matgen"
)

func main() {
	n := flag.Int("n", 300000, "matrix rows")
	iters := flag.Int("iters", 20, "timed SpMV iterations (paper used 128)")
	unique := flag.Int("unique", 128, "unique value pool (makes CSR-VI applicable)")
	flag.Parse()

	c := matgen.Banded(rand.New(rand.NewSource(7)), *n, 60, 8, matgen.Values{Unique: *unique})
	fmt.Printf("banded matrix: %d rows, %d nnz, ws %.1f MB, ttu %.0f\n",
		c.Rows(), c.Len(), float64(spmv.WorkingSet(c))/(1<<20), matgen.TTU(c))

	formats := []spmv.Format{}
	for _, build := range []func() (spmv.Format, error){
		func() (spmv.Format, error) { return spmv.NewCSR(c) },
		func() (spmv.Format, error) { return spmv.NewCSRDU(c) },
		func() (spmv.Format, error) { return spmv.NewCSRVI(c) },
	} {
		f, err := build()
		if err != nil {
			log.Fatal(err)
		}
		formats = append(formats, f)
	}

	maxThreads := runtime.GOMAXPROCS(0)
	var threadCounts []int
	for t := 1; t <= maxThreads; t *= 2 {
		threadCounts = append(threadCounts, t)
	}

	x := make([]float64, c.Cols())
	y := make([]float64, c.Rows())
	for i := range x {
		x[i] = float64(i%5) - 2
	}

	fmt.Printf("\n%-8s", "threads")
	for _, f := range formats {
		fmt.Printf("%14s", f.Name())
	}
	fmt.Println("   (seconds/SpMV; speedup vs serial CSR)")

	serial := map[string]float64{}
	for _, th := range threadCounts {
		fmt.Printf("%-8d", th)
		for _, f := range formats {
			e, err := spmv.NewExecutor(f, th)
			if err != nil {
				log.Fatal(err)
			}
			if err := e.RunIters(3, y, x); err != nil { // warm
				log.Fatal(err)
			}
			start := time.Now()
			if err := e.RunIters(*iters, y, x); err != nil {
				log.Fatal(err)
			}
			sec := time.Since(start).Seconds() / float64(*iters)
			e.Close()
			if th == 1 {
				serial[f.Name()] = sec
			}
			fmt.Printf("  %9.2gs %1.2fx", sec, serial["csr"]/sec)
		}
		fmt.Println()
	}
	fmt.Println("\ncompression ratios:", ratios(formats))
}

func ratios(fs []spmv.Format) string {
	out := ""
	for _, f := range fs {
		out += fmt.Sprintf(" %s=%.0f%%", f.Name(), 100*spmv.CompressionRatio(f))
	}
	return out
}
