// Quickstart: assemble a sparse matrix, compare storage formats, and
// run a multithreaded SpMV — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"
	"runtime"

	"spmv"
)

func main() {
	// Assemble a small tridiagonal system in triplet (COO) form. Any
	// order and duplicate entries are fine; constructors finalize it.
	const n = 1 << 16
	c := spmv.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	fmt.Printf("matrix: %dx%d, %d non-zeros, CSR working set %.2f MB\n",
		n, n, c.Len(), float64(spmv.WorkingSet(c))/(1<<20))

	// Build the baseline and both compressed formats.
	base, err := spmv.NewCSR(c)
	if err != nil {
		log.Fatal(err)
	}
	du, err := spmv.NewCSRDU(c)
	if err != nil {
		log.Fatal(err)
	}
	vi, err := spmv.NewCSRVI(c)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range []spmv.Format{base, du, vi} {
		fmt.Printf("  %-8s %9d bytes (%.0f%% of CSR)\n",
			f.Name(), f.SizeBytes(), 100*spmv.CompressionRatio(f))
	}
	fmt.Printf("  csr-vi unique values: %d (ttu %.0f)\n", len(vi.Unique), vi.TTU())

	// Multithreaded SpMV: row partitioning, nnz-balanced, one worker
	// goroutine per chunk.
	threads := runtime.GOMAXPROCS(0)
	e, err := spmv.NewExecutor(du, threads)
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	if err := e.Run(y, x); err != nil {
		log.Fatal(err)
	}
	// For the tridiagonal Laplacian and x = 1: y = [1, 0, ..., 0, 1].
	fmt.Printf("y[0]=%g y[1]=%g ... y[n-1]=%g (on %d threads)\n",
		y[0], y[1], y[n-1], e.Threads())
}
