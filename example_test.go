package spmv_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"spmv"
)

// tridiag builds the n×n 1D Laplacian used by several examples.
func tridiag(n int) *spmv.COO {
	c := spmv.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c
}

func ExampleNewCSRDU() {
	c := tridiag(1000)
	m, _ := spmv.NewCSRDU(c)
	fmt.Printf("%s: %d nnz, %.0f%% of CSR\n",
		m.Name(), m.NNZ(), 100*spmv.CompressionRatio(m))
	st := m.Stats()
	fmt.Printf("units: %d, all one-byte deltas: %v\n", st.Units, st.PerClass[0] == st.Units)
	// Output:
	// csr-du: 2998 nnz, 75% of CSR
	// units: 1000, all one-byte deltas: true
}

func ExampleNewCSRVI() {
	c := tridiag(1000) // only two distinct values: 2 and -1
	m, _ := spmv.NewCSRVI(c)
	fmt.Printf("unique values: %d (ttu %.0f), index width %d byte\n",
		len(m.Unique), m.TTU(), m.IndexWidth())
	fmt.Printf("applicable per the paper's ttu>5 rule: %v\n", m.Applicable())
	// Output:
	// unique values: 2 (ttu 1499), index width 1 byte
	// applicable per the paper's ttu>5 rule: true
}

func ExampleVerify() {
	c := tridiag(1000)
	m, _ := spmv.NewCSRDU(c)
	fmt.Println("fresh matrix verifies:", spmv.Verify(m) == nil)

	// Simulate bit rot: the encoded control stream loses its last byte,
	// as a truncated download or torn mmap would produce.
	m.Ctl = m.Ctl[:len(m.Ctl)-1]
	err := spmv.Verify(m)
	fmt.Println("truncated stream detected:", errors.Is(err, spmv.ErrTruncated))
	// Output:
	// fresh matrix verifies: true
	// truncated stream detected: true
}

func ExampleNewExecutor() {
	c := tridiag(8)
	m, _ := spmv.NewCSR(c)
	e, _ := spmv.NewExecutor(m, 4) // row partitioning, nnz balanced
	defer e.Close()
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	y := make([]float64, 8)
	e.Run(y, x) // y = A*x on 4 goroutines
	fmt.Println(y)
	// Output:
	// [1 0 0 0 0 0 0 1]
}

func ExampleCG() {
	c := tridiag(64)
	m, _ := spmv.NewCSRVI(c) // the solver is format-agnostic
	op, _ := spmv.NewOperator(m)
	b := make([]float64, 64)
	b[31] = 1
	x := make([]float64, 64)
	res, _ := spmv.CG(op, b, x, 1e-10, 1000)
	fmt.Printf("converged=%v residual<=1e-10=%v\n", res.Converged, res.Residual <= 1e-10)
	// Output:
	// converged=true residual<=1e-10=true
}

func ExampleAnalyze() {
	a := spmv.Analyze(tridiag(500))
	fmt.Printf("symmetric=%v diagonals=%d ttu>5=%v\n", a.Symmetric, a.Diagonals, a.TTU > 5)
	top := a.Recommend()[0]
	fmt.Printf("advisor: %s (predicted %.0f%% of CSR)\n", top.Format, 100*top.Ratio)
	// Output:
	// symmetric=true diagonals=3 ttu>5=true
	// advisor: csr-du-vi (predicted 25% of CSR)
}

func ExampleReadMatrixMarket() {
	mtx := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 -1.0
3 3 4.0
`
	c, _ := spmv.ReadMatrixMarket(strings.NewReader(mtx))
	fmt.Printf("%dx%d with %d nnz after symmetric expansion\n", c.Rows(), c.Cols(), c.Len())
	// Output:
	// 3x3 with 4 nnz after symmetric expansion
}

func ExampleWriteMatrix() {
	m, _ := spmv.NewCSRDU(tridiag(100))
	var buf bytes.Buffer
	spmv.WriteMatrix(&buf, m) // encode once...
	back, _ := spmv.ReadMatrix(&buf)
	fmt.Printf("loaded %s with %d nnz\n", back.Name(), back.NNZ()) // ...load compressed
	// Output:
	// loaded csr-du with 298 nnz
}

func ExampleRCM() {
	// A permuted banded matrix: RCM recovers the banded ordering.
	c := tridiag(6)
	c.Finalize()
	shuffled, _ := spmv.PermuteMatrix(c, []int32{3, 0, 5, 1, 4, 2})
	perm, _ := spmv.RCM(shuffled)
	tidy, _ := spmv.PermuteMatrix(shuffled, perm)
	fmt.Printf("bandwidth %d -> %d\n", spmv.Bandwidth(shuffled), spmv.Bandwidth(tidy))
	// Output:
	// bandwidth 5 -> 1
}

func ExampleNewILU0() {
	c := tridiag(100) // tridiagonal: ILU(0) is the exact factorization
	m, _ := spmv.NewCSR(c)
	op, _ := spmv.NewOperator(m)
	ilu, _ := spmv.NewILU0(c)
	b := make([]float64, 100)
	b[0] = 1
	x := make([]float64, 100)
	res, _ := spmv.CGPrec(op, ilu, b, x, 1e-12, 100)
	fmt.Printf("iterations: %d\n", res.Iterations) // exact preconditioner: 1 step
	// Output:
	// iterations: 1
}

func ExampleBuildFormat() {
	c := tridiag(50)
	for _, name := range []string{"csr", "csr-du", "cds"} {
		f, _ := spmv.BuildFormat(name, c)
		fmt.Printf("%s %d bytes\n", f.Name(), f.SizeBytes())
	}
	// Output:
	// csr 1980 bytes
	// csr-du 1432 bytes
	// cds 1212 bytes
}
