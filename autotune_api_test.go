package spmv_test

import (
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"spmv"
	"spmv/internal/matgen"
)

// TestConstructorsDelegateToBuild pins the constructor consolidation:
// every deprecated NewXxx wrapper must produce a matrix identical (name
// and working-set bytes) to the Build call its docs point at, and the
// parameterized survivors must keep honoring their extra knobs.
func TestConstructorsDelegateToBuild(t *testing.T) {
	c, _ := laplacian2D(10)
	viaNew := map[string]func() (spmv.Format, error){
		"csr":       func() (spmv.Format, error) { return spmv.NewCSR(c) },
		"csr16":     func() (spmv.Format, error) { return spmv.NewCSR16(c) },
		"csr-du":    func() (spmv.Format, error) { return spmv.NewCSRDU(c) },
		"csr-vi":    func() (spmv.Format, error) { return spmv.NewCSRVI(c) },
		"csr-du-vi": func() (spmv.Format, error) { return spmv.NewCSRDUVI(c) },
		"dcsr":      func() (spmv.Format, error) { return spmv.NewDCSR(c) },
		"csc":       func() (spmv.Format, error) { return spmv.NewCSC(c) },
		"csr32":     func() (spmv.Format, error) { return spmv.NewCSR32(c) },
		"ell":       func() (spmv.Format, error) { return spmv.NewELL(c) },
		"jds":       func() (spmv.Format, error) { return spmv.NewJDS(c) },
		"cds":       func() (spmv.Format, error) { return spmv.NewCDS(c) },
		"vbr":       func() (spmv.Format, error) { return spmv.NewVBR(c) },
		"hybrid":    func() (spmv.Format, error) { return spmv.NewHybrid(c) },
	}
	for name, ctor := range viaNew {
		a, err := ctor()
		if err != nil {
			t.Errorf("%s: constructor: %v", name, err)
			continue
		}
		b, err := spmv.Build(c, spmv.WithFormat(name))
		if err != nil {
			t.Errorf("%s: Build: %v", name, err)
			continue
		}
		if a.Name() != b.Name() || a.SizeBytes() != b.SizeBytes() {
			t.Errorf("%s: constructor (%s, %d bytes) != Build (%s, %d bytes)",
				name, a.Name(), a.SizeBytes(), b.Name(), b.SizeBytes())
		}
	}

	// The options-carrying delegate: NewCSRDUOpts == Build + WithDUOptions.
	o := spmv.DUOptions{RLE: true}
	a, err := spmv.NewCSRDUOpts(c, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spmv.Build(c, spmv.WithFormat("csr-du"), spmv.WithDUOptions(o))
	if err != nil {
		t.Fatal(err)
	}
	if a.SizeBytes() != b.SizeBytes() {
		t.Errorf("NewCSRDUOpts %d bytes != Build+WithDUOptions %d bytes", a.SizeBytes(), b.SizeBytes())
	}

	// BuildFormat delegates too.
	f, err := spmv.BuildFormat("csr-du", c)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "csr-du" {
		t.Errorf("BuildFormat built %q", f.Name())
	}
}

// autoShapes are the ISSUE acceptance shapes, generated through the
// same matgen entry points as the internal table test.
func autoShapes() map[string]*spmv.COO {
	return map[string]*spmv.COO{
		"dense-blocks": matgen.BlockDiag(rand.New(rand.NewSource(21)), 96, 4, matgen.Values{}),
		"skewed-rows":  matgen.SkewedRows(rand.New(rand.NewSource(22)), 2000, 4, 17, 0.4, matgen.Values{}),
		"few-unique": matgen.Quantize(
			matgen.RandomUniform(rand.New(rand.NewSource(23)), 1200, 1200, 9, matgen.Values{}),
			rand.New(rand.NewSource(24)), 30),
		"wide-random": matgen.RandomUniform(rand.New(rand.NewSource(25)), 1500, 1<<17, 8, matgen.Values{}),
	}
}

// TestWithAutoFormatPublic is the acceptance criterion through the
// public API: for each shape, Build(WithAutoFormat) must verify, match
// the COO reference product, report its decision, and predict within 5%
// of the true registry minimum bytes-per-SpMV.
func TestWithAutoFormatPublic(t *testing.T) {
	for name, c := range autoShapes() {
		var rep spmv.TuneReport
		m, err := spmv.Build(c, spmv.WithAutoFormat(), spmv.WithTuneReport(&rep))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spmv.Verify(m); err != nil {
			t.Fatalf("%s: Verify: %v", name, err)
		}
		if rep.Chosen.Format == "" && rep.Chosen.Name() != "csr" {
			t.Errorf("%s: report carries no chosen spec", name)
		}
		if len(rep.Candidates) == 0 || rep.ChosenPredBytes <= 0 {
			t.Errorf("%s: report incomplete: %d candidates, %d pred bytes",
				name, len(rep.Candidates), rep.ChosenPredBytes)
		}

		// The report is a serializable decision trace.
		blob, err := json.Marshal(&rep)
		if err != nil {
			t.Fatalf("%s: marshal report: %v", name, err)
		}
		var back spmv.TuneReport
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: unmarshal report: %v", name, err)
		}
		if back.Chosen.Name() != rep.Chosen.Name() {
			t.Errorf("%s: report did not round-trip JSON", name)
		}

		// Product correctness against the triplet reference.
		x := make([]float64, c.Cols())
		for i := range x {
			x[i] = float64(i%11) - 5
		}
		got := make([]float64, c.Rows())
		m.SpMV(got, x)
		want := make([]float64, c.Rows())
		c.SpMV(want, x)
		for i := range want {
			d := got[i] - want[i]
			if d < 0 {
				d = -d
			}
			lim := want[i]
			if lim < 0 {
				lim = -lim
			}
			if d > 1e-9*(1+lim) {
				t.Fatalf("%s: row %d = %v, want %v", name, i, got[i], want[i])
			}
		}

		// 5% acceptance vs the true registry minimum.
		var trueMin int64 = -1
		for _, fname := range spmv.FormatNames() {
			if fname == "csr32" && !rep.Features.Lossless32 {
				continue
			}
			f, err := spmv.Build(c, spmv.WithFormat(fname))
			if err != nil {
				continue
			}
			if b := spmv.BytesPerSpMV(f); trueMin < 0 || b < trueMin {
				trueMin = b
			}
		}
		if float64(rep.ChosenPredBytes) > 1.05*float64(trueMin) {
			t.Errorf("%s: chose %q at %d predicted bytes/SpMV; true minimum %d (>5%% off)",
				name, rep.Chosen.Name(), rep.ChosenPredBytes, trueMin)
		}
	}
}

// TestWithAutoBudgetPublic smokes the probe-refined path end to end
// through the public API.
func TestWithAutoBudgetPublic(t *testing.T) {
	c := matgen.RandomUniform(rand.New(rand.NewSource(33)), 500, 500, 8, matgen.Values{})
	var rep spmv.TuneReport
	m, err := spmv.Build(c, spmv.WithAutoBudget(200*time.Millisecond), spmv.WithTuneReport(&rep))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Probed {
		t.Error("WithAutoBudget did not run the probe stage")
	}
	if err := spmv.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.VsCSR != nil && rep.VsCSR.Significant && rep.VsCSR.Delta > 0 {
		t.Errorf("probe-refined choice significantly slower than csr: %+v", rep.VsCSR)
	}
}

// TestAutoFormatConflict pins the option conflict as a usage error.
func TestAutoFormatConflict(t *testing.T) {
	c, _ := laplacian2D(4)
	_, err := spmv.Build(c, spmv.WithFormat("csr"), spmv.WithAutoFormat())
	if !errors.Is(err, spmv.ErrUsage) {
		t.Fatalf("WithFormat+WithAutoFormat: got %v, want ErrUsage", err)
	}
}
