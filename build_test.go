package spmv_test

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"spmv"
)

// laplacian2D assembles the 5-point stencil on an n×n grid together
// with its dense image. Symmetric, banded and uniform-row, so every
// registered format (including sym-csr, cds and ell) can represent it.
func laplacian2D(n int) (*spmv.COO, []float64) {
	dim := n * n
	c := spmv.NewCOO(dim, dim)
	dense := make([]float64, dim*dim)
	add := func(i, j int, v float64) {
		c.Add(i, j, v)
		dense[i*dim+j] += v
	}
	for r := 0; r < n; r++ {
		for q := 0; q < n; q++ {
			i := r*n + q
			add(i, i, 4)
			if q > 0 {
				add(i, i-1, -1)
			}
			if q < n-1 {
				add(i, i+1, -1)
			}
			if r > 0 {
				add(i, i-n, -1)
			}
			if r < n-1 {
				add(i, i+n, -1)
			}
		}
	}
	return c, dense
}

func denseSpMV(dense []float64, x []float64, dim int) []float64 {
	y := make([]float64, dim)
	for i := 0; i < dim; i++ {
		s := 0.0
		for j, xv := range x {
			s += dense[i*dim+j] * xv
		}
		y[i] = s
	}
	return y
}

// TestBuildRoundTripsEveryFormat: every name in FormatNames goes
// Build → Verify → SafeSpMV against the dense reference, and the
// batched path at k=1 is bitwise identical to the scalar kernel.
func TestBuildRoundTripsEveryFormat(t *testing.T) {
	c, dense := laplacian2D(10)
	dim := c.Rows()
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := denseSpMV(dense, x, dim)

	names := spmv.FormatNames()
	if len(names) == 0 {
		t.Fatal("FormatNames is empty")
	}
	for _, name := range names {
		f, err := spmv.Build(c, spmv.WithFormat(name))
		if err != nil {
			t.Errorf("%s: Build: %v", name, err)
			continue
		}
		if f.Name() == "" || f.NNZ() != c.Len() {
			t.Errorf("%s: Name %q NNZ %d, want nnz %d", name, f.Name(), f.NNZ(), c.Len())
		}
		if err := spmv.Verify(f); err != nil {
			t.Errorf("%s: Verify: %v", name, err)
			continue
		}
		y := make([]float64, dim)
		if err := spmv.SafeSpMV(f, y, x); err != nil {
			t.Errorf("%s: SafeSpMV: %v", name, err)
			continue
		}
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-10 {
				t.Errorf("%s: y[%d] = %v, want %v", name, i, y[i], want[i])
				break
			}
		}
		// Batched with k=1 must be bitwise the scalar kernel, fused or
		// fallback alike.
		y1 := make([]float64, dim)
		if err := spmv.SafeSpMVBatch(f, y1, x, 1); err != nil {
			t.Errorf("%s: SafeSpMVBatch: %v", name, err)
			continue
		}
		for i := range y1 {
			if math.Float64bits(y1[i]) != math.Float64bits(y[i]) {
				t.Errorf("%s: batch k=1 y[%d] = %x, scalar %x", name, i,
					math.Float64bits(y1[i]), math.Float64bits(y[i]))
				break
			}
		}
		// And a wider panel must match per-column scalar runs.
		const k = 3
		xp := make([]float64, dim*k)
		for i := range xp {
			xp[i] = rng.NormFloat64()
		}
		yp := make([]float64, dim*k)
		if err := spmv.SafeSpMVBatch(f, yp, xp, k); err != nil {
			t.Errorf("%s: SafeSpMVBatch k=%d: %v", name, k, err)
			continue
		}
		xc := make([]float64, dim)
		yc := make([]float64, dim)
		for cc := 0; cc < k; cc++ {
			for j := range xc {
				xc[j] = xp[j*k+cc]
			}
			f.SpMV(yc, xc)
			for i := range yc {
				if math.Abs(yp[i*k+cc]-yc[i]) > 1e-10 {
					t.Errorf("%s: k=%d column %d row %d = %v, want %v",
						name, k, cc, i, yp[i*k+cc], yc[i])
					break
				}
			}
		}
	}
}

// TestBuildOptionsPublic exercises the options that change encoder
// behavior and the typed unknown-format error.
func TestBuildOptionsPublic(t *testing.T) {
	c, _ := laplacian2D(8)

	// Default is CSR.
	f, err := spmv.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "csr" {
		t.Errorf("default Build name %q, want csr", f.Name())
	}

	// DU options and workers reach the encoder; streams stay equivalent.
	serial, err := spmv.Build(c, spmv.WithFormat("csr-du"),
		spmv.WithDUOptions(spmv.DUOptions{RLE: true}))
	if err != nil {
		t.Fatal(err)
	}
	par, err := spmv.Build(c, spmv.WithFormat("csr-du"),
		spmv.WithDUOptions(spmv.DUOptions{RLE: true}), spmv.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if serial.SizeBytes() != par.SizeBytes() {
		t.Errorf("parallel encode size %d != serial %d", par.SizeBytes(), serial.SizeBytes())
	}

	// Unknown names are ErrUsage and list every valid name.
	_, err = spmv.Build(c, spmv.WithFormat("nope"))
	if err == nil {
		t.Fatal("unknown format accepted")
	}
	if !errors.Is(err, spmv.ErrUsage) {
		t.Errorf("error %v does not wrap ErrUsage", err)
	}
	for _, name := range spmv.FormatNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
}

// TestNewExecutorOptsPublic drives the consolidated executor
// constructor, scalar and batched, with telemetry attached.
func TestNewExecutorOptsPublic(t *testing.T) {
	c, dense := laplacian2D(8)
	dim := c.Rows()
	f, err := spmv.Build(c, spmv.WithFormat("csr-du"))
	if err != nil {
		t.Fatal(err)
	}
	rec := spmv.NewRecorder()
	e, err := spmv.NewExecutorOpts(f, spmv.ExecOptions{Threads: 3, Collector: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(12))
	const k = 4
	xp := make([]float64, dim*k)
	for i := range xp {
		xp[i] = rng.NormFloat64()
	}
	yp := make([]float64, dim*k)
	if err := e.RunBatch(yp, xp, k); err != nil {
		t.Fatal(err)
	}
	xc := make([]float64, dim)
	for cc := 0; cc < k; cc++ {
		for j := range xc {
			xc[j] = xp[j*k+cc]
		}
		want := denseSpMV(dense, xc, dim)
		for i := range want {
			if math.Abs(yp[i*k+cc]-want[i]) > 1e-10 {
				t.Fatalf("column %d row %d = %v, want %v", cc, i, yp[i*k+cc], want[i])
			}
		}
	}
	if s := rec.Snapshot(); s.Runs != 1 || s.Last.Vectors != k {
		t.Errorf("telemetry runs %d vectors %d, want 1 and %d", s.Runs, s.Last.Vectors, k)
	}

	if _, err := spmv.NewExecutorOpts(f, spmv.ExecOptions{Partition: "spiral"}); !errors.Is(err, spmv.ErrUsage) {
		t.Errorf("unknown partition: %v, want ErrUsage", err)
	}

	// Traffic model: per-vector bytes fall with k.
	if !(spmv.BytesPerVector(f, 8) < spmv.BytesPerVector(f, 1)) {
		t.Error("BytesPerVector(f, 8) not below BytesPerVector(f, 1)")
	}
	if spmv.BytesPerSpMM(f, 1) != spmv.BytesPerSpMV(f) {
		t.Error("BytesPerSpMM(f, 1) != BytesPerSpMV(f)")
	}
}
