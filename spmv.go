// Package spmv is a sparse matrix-vector multiplication library built
// around working-set compression, reproducing Kourtis, Goumas and
// Koziris, "Improving the Performance of Multithreaded Sparse
// Matrix-Vector Multiplication Using Index and Value Compression"
// (ICPP 2008).
//
// SpMV is bandwidth-bound on shared-memory multicores: every thread
// streams the matrix from memory through a shared bus, so adding cores
// stops helping once the bus saturates. The paper's two storage
// formats shrink the stream itself:
//
//   - CSR-DU (delta units) compresses the column index data: column
//     indices become per-unit delta sequences stored in the narrowest
//     of 1/2/4/8-byte widths, decoded by one branch per unit.
//   - CSR-VI (value indirection) compresses the numerical data of
//     matrices with few distinct values: each value becomes a 1/2/4-byte
//     index into a unique-value table.
//
// Both trade CPU cycles for bandwidth — a trade that improves as more
// cores share the memory subsystem, even where the serial kernel gets
// slower.
//
// # Quick start
//
//	c := spmv.NewCOO(rows, cols)
//	c.Add(i, j, v) // ... assemble triplets
//	m, err := spmv.Build(c, spmv.WithFormat("csr-du"))
//	e, err := spmv.NewExecutorOpts(m, spmv.ExecOptions{Threads: 8})
//	defer e.Close()
//	if err := e.Run(y, x); err != nil { // y = A*x on 8 goroutines
//		log.Fatal(err)
//	}
//
// With several right-hand sides, batch them into row-major n×k panels
// and let one pass over the compressed matrix stream serve all k
// vectors (see the "Batched SpMV" section of the README):
//
//	// X is cols×k, Y is rows×k, element (i, c) at [i*k+c].
//	if err := e.RunBatch(Y, X, k); err != nil {
//		log.Fatal(err)
//	}
//
// Not sure which format fits the matrix? Let the autotuner decide —
// it ranks every registry format by predicted memory traffic and
// reports its reasoning:
//
//	var rep spmv.TuneReport
//	m, err := spmv.Build(c, spmv.WithAutoFormat(), spmv.WithTuneReport(&rep))
//
// # Validation
//
// The compressed formats are bytecodes, and a corrupt stream is a wild
// pointer waiting to happen. Every format implements Verify, an O(nnz)
// structural self-check; run it on any matrix whose bytes crossed a
// trust boundary (files, sockets, shared memory):
//
//	m, err := spmv.ReadMatrix(f) // already CRC-checked and verified
//	if err := spmv.Verify(m); err != nil {
//		// errors.Is(err, spmv.ErrCorrupt / ErrTruncated / ErrShape)
//		log.Fatal(err)
//	}
//
// The parallel executors additionally recover kernel panics into errors
// naming the failing chunk's row range, so one rotten stream cannot
// take down the process.
//
// The package also provides the related-work comparator formats
// (CSR16, CSR32, DCSR, BCSR, VBR, ELLPACK, JDS, CDS, symmetric CSR, a
// per-region hybrid), row/column/block-partitioned parallel executors,
// CG/PCG/GMRES/BiCGSTAB solvers with ILU(0) preconditioning and
// mixed-precision refinement, RCM reordering, a structure analyzer with
// analytic and empirical format advice, Matrix Market and binary
// container I/O, FPC value-stream compression, synthetic matrix
// generators, and a deterministic simulator of the paper's 8-core
// Clovertown platform for reproducing its evaluation (see cmd/spmvsim
// and EXPERIMENTS.md).
package spmv

import (
	"io"

	"spmv/internal/analyze"
	"spmv/internal/bcsr"
	"spmv/internal/cds"
	"spmv/internal/core"
	"spmv/internal/csc"
	"spmv/internal/csr"
	"spmv/internal/csrdu"
	"spmv/internal/csrduvi"
	"spmv/internal/csrvi"
	"spmv/internal/dcsr"
	"spmv/internal/ell"
	"spmv/internal/formats"
	"spmv/internal/fpc"
	"spmv/internal/hybrid"
	"spmv/internal/jds"
	"spmv/internal/matfile"
	"spmv/internal/mmio"
	"spmv/internal/obs"
	"spmv/internal/parallel"
	"spmv/internal/precond"
	"spmv/internal/prof"
	"spmv/internal/reorder"
	"spmv/internal/server"
	"spmv/internal/solver"
	"spmv/internal/sym"
	"spmv/internal/vbr"
)

// Core vocabulary, shared by every format.
type (
	// COO is the triplet assembly matrix all formats are built from.
	COO = core.COO
	// Format is any sparse storage scheme with an SpMV kernel.
	Format = core.Format
	// Chunk is a row-partitioned piece of a matrix.
	Chunk = core.Chunk
	// Splitter is a format supporting row partitioning.
	Splitter = core.Splitter
	// NNZSplitter is a format supporting nonzero-split partitioning:
	// chunk boundaries fall every nnz/n elements, mid-row where needed,
	// so load balance is immune to row-length skew. CSR implements it.
	NNZSplitter = core.NNZSplitter
	// NNZChunk is one half-open nonzero range of an NNZSplitter.
	NNZChunk = core.NNZChunk
)

// Concrete formats, usable through Format or directly.
type (
	// CSR is the baseline Compressed Sparse Row matrix (32-bit indices).
	CSR = csr.Matrix
	// CSR16 is CSR with 16-bit column indices (cols < 65536).
	CSR16 = csr.Matrix16
	// CSRDU is the paper's delta-unit index-compressed matrix.
	CSRDU = csrdu.Matrix
	// DUOptions controls the CSR-DU encoder (RLE units, unit splitting).
	DUOptions = csrdu.Options
	// CSRVI is the paper's value-indexed matrix.
	CSRVI = csrvi.Matrix
	// CSRDUVI combines CSR-DU index compression with CSR-VI values.
	CSRDUVI = csrduvi.Matrix
	// DCSR is the Willcock & Lumsdaine comparator format.
	DCSR = dcsr.Matrix
	// BCSR is the register-blocked comparator format.
	BCSR = bcsr.Matrix
	// CSC is the column-oriented format for column partitioning.
	CSC = csc.Matrix
	// CSR32 stores single-precision values (half the value stream);
	// pair with Refine for double-precision solutions.
	CSR32 = csr.Matrix32
	// ELL is the ELLPACK-ITPACK padded format.
	ELL = ell.Matrix
	// JDS is the jagged-diagonal format for skewed row lengths.
	JDS = jds.Matrix
	// CDS is the compressed-diagonal format for banded matrices.
	CDS = cds.Matrix
	// SymCSR stores one triangle of a symmetric matrix.
	SymCSR = sym.Matrix
	// VBR is variable-block-row storage with auto-detected blocks.
	VBR = vbr.Matrix
	// Hybrid stores each row block in whichever format encodes it
	// smallest (towards the authors' CSX follow-up work).
	Hybrid = hybrid.Matrix
)

// NewCOO returns an empty rows×cols triplet matrix. Assemble with Add,
// then pass to any format constructor (which finalizes it in place).
func NewCOO(rows, cols int) *COO { return core.NewCOO(rows, cols) }

// Constructors. Build is the canonical entry point; every constructor
// below that takes no parameters beyond the triplets is a one-line
// delegate onto it, kept (deprecated) for callers that want the
// concrete type without a type assertion. Constructors exposing knobs
// the format registry does not (arbitrary BCSR block shapes, ELLPACK
// fill bounds, symmetry tolerances, explicit VBR partitions) stay
// first-class.

// NewCSR builds the baseline CSR format (4-byte indices, 8-byte values).
//
// Deprecated: use Build, which names the format and carries encoder
// options in one call. This constructor remains fully supported and
// returns the concrete *CSR.
func NewCSR(c *COO) (*CSR, error) { return buildAs[*CSR](c) }

// NewCSR16 builds CSR with 2-byte column indices; errors if the matrix
// has 2^16 or more columns.
//
// Deprecated: use Build with WithFormat("csr16"). This constructor
// remains fully supported and returns the concrete *CSR16.
func NewCSR16(c *COO) (*CSR16, error) { return buildAs[*CSR16](c, WithFormat("csr16")) }

// NewCSRDU builds the CSR-DU index-compressed format with default
// encoder options.
//
// Deprecated: use Build with WithFormat("csr-du"), adding WithDUOptions
// or WithWorkers as needed. This constructor remains fully supported
// and returns the concrete *CSRDU.
func NewCSRDU(c *COO) (*CSRDU, error) { return buildAs[*CSRDU](c, WithFormat("csr-du")) }

// NewCSRDUOpts builds CSR-DU with explicit encoder options (e.g. RLE
// units for matrices with long constant-stride runs).
//
// Deprecated: use Build with WithFormat("csr-du") and WithDUOptions(o).
// This constructor remains fully supported and returns the concrete
// *CSRDU.
func NewCSRDUOpts(c *COO, o DUOptions) (*CSRDU, error) {
	return buildAs[*CSRDU](c, WithFormat("csr-du"), WithDUOptions(o))
}

// NewCSRDUParallel builds CSR-DU with workers concurrent encoders
// (0 = GOMAXPROCS); the stream is byte-identical to the serial encoder.
//
// Deprecated: set DUOptions.Workers and call NewCSRDUOpts (or Build
// with WithWorkers), which folds the serial/parallel split into one
// entry point. This wrapper remains for compatibility.
func NewCSRDUParallel(c *COO, o DUOptions, workers int) (*CSRDU, error) {
	return csrdu.FromCOOParallel(c, o, workers)
}

// NewCSRVI builds the CSR-VI value-indexed format. Worthwhile when the
// matrix's total-to-unique values ratio exceeds ~5 (use TTU to check).
//
// Deprecated: use Build with WithFormat("csr-vi"). This constructor
// remains fully supported and returns the concrete *CSRVI.
func NewCSRVI(c *COO) (*CSRVI, error) { return buildAs[*CSRVI](c, WithFormat("csr-vi")) }

// NewCSRDUVI builds the combined index+value compressed format.
//
// Deprecated: use Build with WithFormat("csr-du-vi"). This constructor
// remains fully supported and returns the concrete *CSRDUVI.
func NewCSRDUVI(c *COO) (*CSRDUVI, error) { return buildAs[*CSRDUVI](c, WithFormat("csr-du-vi")) }

// NewDCSR builds the DCSR comparator format (byte command stream).
//
// Deprecated: use Build with WithFormat("dcsr"). This constructor
// remains fully supported and returns the concrete *DCSR.
func NewDCSR(c *COO) (*DCSR, error) { return buildAs[*DCSR](c, WithFormat("dcsr")) }

// NewBCSR builds blocked CSR with r×c register blocks. The registry
// exposes only the 2×2 and 4×4 shapes ("bcsr2x2", "bcsr4x4"); this
// constructor accepts any block shape.
func NewBCSR(c *COO, r, cols int) (*BCSR, error) { return bcsr.FromCOO(c, r, cols) }

// NewCSC builds the compressed sparse column format.
//
// Deprecated: use Build with WithFormat("csc"). This constructor
// remains fully supported and returns the concrete *CSC.
func NewCSC(c *COO) (*CSC, error) { return buildAs[*CSC](c, WithFormat("csc")) }

// NewCSR32 builds CSR with single-precision values (values are rounded).
//
// Deprecated: use Build with WithFormat("csr32"). This constructor
// remains fully supported and returns the concrete *CSR32.
func NewCSR32(c *COO) (*CSR32, error) { return buildAs[*CSR32](c, WithFormat("csr32")) }

// NewELL builds the ELLPACK-ITPACK format; errors if padding would
// exceed ell.DefaultMaxFill times the non-zero count.
//
// Deprecated: use Build with WithFormat("ell"), or NewELLMaxFill for an
// explicit padding bound. This constructor remains fully supported and
// returns the concrete *ELL.
func NewELL(c *COO) (*ELL, error) { return buildAs[*ELL](c, WithFormat("ell")) }

// NewELLMaxFill builds ELLPACK with an explicit padding bound, which
// the registry's "ell" entry does not expose.
func NewELLMaxFill(c *COO, maxFill float64) (*ELL, error) { return ell.FromCOOMaxFill(c, maxFill) }

// NewJDS builds the jagged-diagonal format.
//
// Deprecated: use Build with WithFormat("jds"). This constructor
// remains fully supported and returns the concrete *JDS.
func NewJDS(c *COO) (*JDS, error) { return buildAs[*JDS](c, WithFormat("jds")) }

// NewCDS builds the compressed-diagonal format; errors when the
// diagonal count makes the fill unreasonable.
//
// Deprecated: use Build with WithFormat("cds"). This constructor
// remains fully supported and returns the concrete *CDS.
func NewCDS(c *COO) (*CDS, error) { return buildAs[*CDS](c, WithFormat("cds")) }

// NewSymCSR builds symmetric (one-triangle) storage; the matrix must be
// numerically symmetric within tol. The registry's "sym-csr" entry
// fixes tol at its default; this constructor accepts any tolerance.
func NewSymCSR(c *COO, tol float64) (*SymCSR, error) { return sym.FromCOO(c, tol) }

// NewVBR builds variable-block-row storage with automatically detected
// row/column groups (consecutive identical sparsity patterns merge).
//
// Deprecated: use Build with WithFormat("vbr"), or NewVBRParts for
// explicit partitions. This constructor remains fully supported and
// returns the concrete *VBR.
func NewVBR(c *COO) (*VBR, error) { return buildAs[*VBR](c, WithFormat("vbr")) }

// NewVBRParts builds VBR with explicit row/column group boundaries,
// which the registry's auto-partitioning "vbr" entry does not expose.
func NewVBRParts(c *COO, rowPart, colPart []int32) (*VBR, error) {
	return vbr.FromCOO(c, rowPart, colPart)
}

// NewHybrid builds the per-row-block format selector: each block of
// rows is stored in whichever of CSR/CSR-DU/CDS encodes it smallest.
//
// Deprecated: use Build with WithFormat("hybrid") — or WithAutoFormat,
// which extends the per-region choice to the full candidate registry.
// This constructor remains fully supported and returns the concrete
// *Hybrid.
func NewHybrid(c *COO) (*Hybrid, error) { return buildAs[*Hybrid](c, WithFormat("hybrid")) }

// BuildFormat constructs any registered format by name ("csr",
// "csr-du", "csr-vi", "csr-du-vi", "dcsr", "bcsr2x2", "ell", "jds",
// "cds", "vbr", "sym-csr", ...); see FormatNames.
//
// Deprecated: use Build with WithFormat(name), which additionally
// carries encoder options. This function remains fully supported.
func BuildFormat(name string, c *COO) (Format, error) { return Build(c, WithFormat(name)) }

// FormatNames lists every format Build (via WithFormat) accepts.
func FormatNames() []string { return formats.Names() }

// Validation. All format constructors produce internally consistent
// matrices; Verify matters when the encoded bytes arrived from outside
// (ReadMatrix runs it automatically) or may have been tampered with.

// Verifier is a format that can structurally self-check its encoded
// streams in O(nnz). Every format in this package implements it.
type Verifier = core.Verifier

// Sentinel classes for validation failures; test with errors.Is.
var (
	// ErrCorrupt reports structurally invalid encoded data (bad opcode,
	// out-of-range index, checksum mismatch).
	ErrCorrupt = core.ErrCorrupt
	// ErrTruncated reports data that ends mid-structure.
	ErrTruncated = core.ErrTruncated
	// ErrShape reports dimension mismatches (matrix/vector/section sizes).
	ErrShape = core.ErrShape
	// ErrUsage reports caller mistakes (unknown format name, bad panel
	// width, running a closed executor).
	ErrUsage = core.ErrUsage
)

// Verify structurally checks f if it implements Verifier and returns
// nil otherwise.
func Verify(f Format) error { return core.Verify(f) }

// SafeSpMV runs one serial y = f*x with vector-length validation and
// kernel-panic containment — the single-threaded analogue of
// Executor.Run's error handling.
func SafeSpMV(f Format, y, x []float64) error { return core.SafeSpMV(f, y, x) }

// Batched (multi-vector) SpMV. Panels are row-major: X is cols×k with
// element j of vector c at X[j*k+c], Y is rows×k likewise. One pass
// over the matrix stream computes all k products, so the per-vector
// memory traffic falls as BytesPerSpMM(f, k)/k.

// BatchFormat is a format with a fused multi-vector kernel. CSR,
// CSR-DU, CSR-VI and CSR-DU-VI implement it; SpMVBatch falls back to a
// per-column loop for every other format.
type BatchFormat = core.BatchFormat

// SpMVBatch computes the rows×k panel y = f*x serially, using f's fused
// batch kernel when it has one. k=1 is bitwise identical to f.SpMV.
// Panels must be at least rows*k and cols*k long; use SafeSpMVBatch for
// checked dimensions.
func SpMVBatch(f Format, y, x []float64, k int) { core.SpMVBatch(f, y, x, k) }

// SafeSpMVBatch is SpMVBatch with panel-dimension validation and
// kernel-panic containment.
func SafeSpMVBatch(f Format, y, x []float64, k int) error {
	return core.SafeSpMVBatch(f, y, x, k)
}

// Parallel runtime.
type (
	// Executor is the row-partitioned multithreaded SpMV driver.
	Executor = parallel.Executor
	// ColExecutor is the column-partitioned driver (private y vectors
	// plus parallel reduction).
	ColExecutor = parallel.ColExecutor
	// BlockExecutor is the 2D block-partitioned driver.
	BlockExecutor = parallel.BlockExecutor
	// NNZExecutor is the nonzero-split driver: chunk boundaries fall
	// mid-row, so one pathologically long row no longer serializes a
	// run (Partition: "nnz"; CSR only).
	NNZExecutor = parallel.NNZExecutor
	// StealExecutor is the work-stealing row driver: rows are
	// over-decomposed and idle workers steal queued chunks
	// (ExecOptions.Steal).
	StealExecutor = parallel.StealExecutor
	// SymExecutor parallelizes the symmetric (scatter) kernel with
	// private vectors and a deterministic tree reduction.
	SymExecutor = parallel.SymExecutor
	// Runner is the interface all executors satisfy: scalar and batched
	// runs, telemetry attachment, shutdown. NewExecutorOpts returns it.
	Runner = parallel.Runner
	// ExecOptions configures NewExecutorOpts.
	ExecOptions = parallel.ExecOptions
)

// NewExecutorOpts starts an executor over f under one options struct:
// Threads (<= 0 means GOMAXPROCS), an optional telemetry Collector,
// the Partition strategy ("row" or "", "col" for formats that support
// column splitting, or "nnz" for CSR's nonzero-split chunks that keep
// threads balanced on skewed matrices), and Steal, which over-
// decomposes the row partition into a work-stealing chunk queue. An
// unknown partition, or Steal combined with a non-row partition, is an
// ErrUsage.
func NewExecutorOpts(f Format, o ExecOptions) (Runner, error) {
	return parallel.New(f, o)
}

// NewSymExecutor starts a tree-reduction executor for scatter kernels
// (NewSymCSR matrices): workers accumulate into private vectors, then
// merge them pairwise in log2(threads) row-sliced rounds. For a fixed
// thread count the summation order is deterministic, so results are
// bitwise reproducible across runs.
func NewSymExecutor(f Format, nthreads int) (*SymExecutor, error) {
	return parallel.NewSymExecutor(f, nthreads)
}

// NewExecutor starts a row-partitioned executor with up to nthreads
// workers over f. Close it when done.
//
// Deprecated: use NewExecutorOpts, which names the partition strategy
// and attaches the collector in one call. This constructor remains
// fully supported and returns the concrete *Executor.
func NewExecutor(f Format, nthreads int) (*Executor, error) {
	return parallel.NewExecutor(f, nthreads)
}

// NewColExecutor starts a column-partitioned executor (f must support
// column splitting; see NewCSC).
//
// Deprecated: use NewExecutorOpts with Partition: "col". This
// constructor remains fully supported and returns the concrete
// *ColExecutor.
func NewColExecutor(f Format, nthreads int) (*ColExecutor, error) {
	return parallel.NewColExecutor(f, nthreads)
}

// NewBlockExecutor starts a gridR×gridC block-partitioned executor
// directly from triplets.
func NewBlockExecutor(c *COO, gridR, gridC int) (*BlockExecutor, error) {
	return parallel.NewBlockExecutor(c, gridR, gridC)
}

// Observability. Every executor accepts a Collector via SetCollector;
// with none attached the runtime cost is a nil check per run.
type (
	// Collector receives one RunStat per completed executor run.
	Collector = obs.Collector
	// RunStat is the telemetry of one parallel SpMV run.
	RunStat = obs.RunStat
	// ChunkStat is one worker's share of a run.
	ChunkStat = obs.ChunkStat
	// Recorder is a thread-safe aggregating Collector.
	Recorder = obs.Recorder
)

// NewRecorder returns an empty telemetry recorder, ready to pass to an
// executor's SetCollector.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// BytesPerSpMV estimates the memory traffic of one cold-cache SpMV on
// f (matrix stream plus the dense vectors) — the numerator of the
// effective-bandwidth figure GB/s = BytesPerSpMV / secs / 1e9.
func BytesPerSpMV(f Format) int64 { return obs.BytesPerSpMV(f) }

// BytesPerSpMM estimates the traffic of one cold-cache k-column batched
// multiplication: one matrix stream plus k panels of x and y. At k=1 it
// equals BytesPerSpMV.
func BytesPerSpMM(f Format, k int) int64 { return obs.BytesPerSpMM(f, k) }

// BytesPerVector is BytesPerSpMM(f, k)/k — the per-result-vector
// traffic, which falls towards the dense-vector floor as k grows. The
// honest per-vector bandwidth of a batched run is
// GB/s = BytesPerVector(f, k) / (secs/k) / 1e9.
func BytesPerVector(f Format, k int) float64 { return obs.BytesPerVector(f, k) }

// Profiling. Profile walks a built format and reports where its bytes
// live; Attribute joins a profile with a measured timing.
type (
	// FormatProfile is the structural profile of a built format: its
	// per-stream byte split of the traffic model plus format-specific
	// statistics (CSR-DU ctl units, CSR-VI dictionary, BCSR fill).
	FormatProfile = prof.FormatProfile
	// Attribution splits a measured bandwidth across a profile's
	// streams in proportion to their predicted traffic.
	Attribution = prof.Attribution
	// ProfileSeries is a Collector recording a per-iteration time
	// series (wall time, load imbalance) of an executor's runs.
	ProfileSeries = prof.Series
)

// Profile returns the structural profile of a built format. The
// profiled stream bytes sum exactly to BytesPerSpMV(f).
func Profile(f Format) *FormatProfile { return prof.New(f) }

// AttributeBandwidth splits a measured seconds-per-iteration across
// the profile's streams; last, when non-nil, contributes the run's
// thread count and load-imbalance telemetry.
func AttributeBandwidth(p *FormatProfile, secsPerIter float64, last *RunStat) *Attribution {
	return prof.Attribute(p, secsPerIter, last)
}

// NewProfileSeries returns a time-series Collector keeping at most
// maxPoints runs (<= 0 means a default cap).
func NewProfileSeries(maxPoints int) *ProfileSeries { return prof.NewSeries(maxPoints) }

// Solvers.
type (
	// Operator is a square y = A*x operator for the solvers.
	Operator = solver.Operator
	// SolveResult reports solver convergence.
	SolveResult = solver.Result
)

// NewOperator wraps a square format for the solvers.
func NewOperator(f Format) (Operator, error) { return solver.FromFormat(f) }

// NewParallelOperator wraps a parallel executor as an n×n operator.
func NewParallelOperator(r solver.Runner, n int) Operator { return solver.FromRunner(r, n) }

// CG solves A*x = b for SPD A by conjugate gradients; x holds the
// initial guess and the solution.
func CG(a Operator, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solver.CG(a, b, x, tol, maxIter)
}

// PCG is CG with a Jacobi preconditioner (invDiag = 1/diag(A); see
// JacobiInvDiag).
func PCG(a Operator, invDiag, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solver.PCG(a, invDiag, b, x, tol, maxIter)
}

// JacobiInvDiag extracts 1/diag(A) from triplets for PCG.
func JacobiInvDiag(c *COO) ([]float64, error) { return solver.InvDiag(c) }

// Preconditioner applies z = M^{-1} r for the preconditioned solvers.
type Preconditioner = solver.Preconditioner

// ILU0 is the zero-fill incomplete LU preconditioner.
type ILU0 = precond.ILU0

// NewILU0 factors a square matrix for use with CGPrec or
// RightPreconditioned GMRES/BiCGSTAB.
func NewILU0(c *COO) (*ILU0, error) { return precond.NewILU0(c) }

// CGPrec is conjugate gradients with a general SPD preconditioner.
func CGPrec(a Operator, m Preconditioner, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solver.CGPrec(a, m, b, x, tol, maxIter)
}

// RightPreconditioned wraps a as A·M^{-1}; solve the returned operator
// for u with GMRES/BiCGSTAB, then call finish(u) to recover x.
func RightPreconditioned(a Operator, m Preconditioner) (Operator, func(u []float64) []float64) {
	return solver.RightPreconditioned(a, m)
}

// GMRES solves A*x = b for general A by restarted GMRES(restart).
func GMRES(a Operator, b, x []float64, restart int, tol float64, maxIter int) (SolveResult, error) {
	return solver.GMRES(a, b, x, restart, tol, maxIter)
}

// BiCGSTAB solves A*x = b for general A by stabilized bi-conjugate
// gradients (no transpose products needed).
func BiCGSTAB(a Operator, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solver.BiCGSTAB(a, b, x, tol, maxIter)
}

// Refine runs mixed-precision iterative refinement: inner solves on the
// cheap (e.g. CSR32) operator, outer double-precision residual
// correction on the accurate one (Langou et al., paper §III-C).
func Refine(aFull, aInner Operator, b, x []float64, tol float64, maxOuter, innerIter int) (SolveResult, error) {
	return solver.Refine(aFull, aInner, b, x, tol, maxOuter, innerIter)
}

// I/O.

// ReadMatrixMarket parses a Matrix Market stream into triplets.
func ReadMatrixMarket(r io.Reader) (*COO, error) { return mmio.Read(r) }

// WriteMatrixMarket writes triplets as a general real coordinate
// Matrix Market file.
func WriteMatrixMarket(w io.Writer, c *COO) error { return mmio.Write(w, c) }

// WriteMatrix serializes an encoded matrix (CSR, CSR-DU or CSR-VI) in
// the library's binary container, so the O(nnz) encoding pass runs once
// and solver processes load the compressed form directly.
func WriteMatrix(w io.Writer, f Format) error { return matfile.Write(w, f) }

// ReadMatrix loads a matrix written by WriteMatrix; the concrete type
// matches the stored format.
func ReadMatrix(r io.Reader) (Format, error) { return matfile.Read(r) }

// ReadMatrixSized loads a matrix written by WriteMatrix from a stream
// whose total length is known (a file's size, an HTTP body's length).
// Unlike ReadMatrix it rejects section lengths exceeding the remaining
// input before allocating anything, so hostile headers claiming
// gigabyte sections cost nothing — use it whenever the bytes crossed a
// trust boundary.
func ReadMatrixSized(r io.Reader, total int64) (Format, error) { return matfile.ReadSized(r, total) }

// Serving (DESIGN.md §12, cmd/spmvd).

type (
	// Server is the embeddable SpMV-as-a-service HTTP handler: a
	// verified matrix registry with content-addressed caching and LRU
	// eviction, and an admission-controlled, deadline-bounded multiply
	// pipeline that coalesces concurrent requests into SpMM panels.
	Server = server.Server
	// ServerConfig configures NewServer; its zero value serves with
	// sensible defaults.
	ServerConfig = server.Config
)

// NewServer returns the SpMV HTTP service as an http.Handler. Shut it
// down with Drain (graceful) or Close (immediate).
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// Analysis helpers.

// WorkingSet returns the CSR SpMV working set in bytes (matrix data
// plus vectors), the quantity the compressed formats reduce.
func WorkingSet(c *COO) int64 { return core.WorkingSet(c.Rows(), c.Cols(), c.Len()) }

// CompressionRatio returns size(f)/size(CSR) for the same matrix;
// below 1 means f is smaller.
func CompressionRatio(f Format) float64 { return core.CompressionRatio(f) }

// Structure analysis and format advice.
type (
	// Analysis summarizes a matrix's compression-relevant structure.
	Analysis = analyze.Analysis
	// Recommendation is one advised format with predicted size.
	Recommendation = analyze.Recommendation
)

// Analyze inspects a matrix's structure (delta widths, ttu, diagonals,
// symmetry, row skew); call Recommend on the result for format advice.
func Analyze(c *COO) Analysis { return analyze.Analyze(c) }

// Reordering (RCM bandwidth reduction, §III-A related work).

// RCM returns a reverse Cuthill-McKee permutation (perm[new] = old) of
// a square matrix. Reordering shrinks column deltas, improving both
// x locality and CSR-DU compression.
func RCM(c *COO) ([]int32, error) { return reorder.RCM(c) }

// PermuteMatrix applies a symmetric permutation returned by RCM.
func PermuteMatrix(c *COO, perm []int32) (*COO, error) { return reorder.Permute(c, perm) }

// PermuteVec gathers a vector into permuted order; UnpermuteVec undoes it.
func PermuteVec(x []float64, perm []int32) []float64 { return reorder.PermuteVec(x, perm) }

// UnpermuteVec scatters a permuted vector back to original order.
func UnpermuteVec(y []float64, perm []int32) []float64 { return reorder.UnpermuteVec(y, perm) }

// Bandwidth returns max |i-j| over the non-zeros.
func Bandwidth(c *COO) int { return reorder.Bandwidth(c) }

// Value-stream compression (FPC, §III-C ref [23]): storage/transfer
// side, not an SpMV format.

// CompressValues losslessly compresses a float64 stream (FPC).
func CompressValues(values []float64) []byte { return fpc.Compress(values) }

// DecompressValues reverses CompressValues.
func DecompressValues(data []byte) ([]float64, error) { return fpc.Decompress(data) }

// ValueCompressibility returns the FPC compressed/raw ratio of a value
// stream — a quick probe of value redundancy beyond exact duplicates.
func ValueCompressibility(values []float64) float64 { return fpc.Ratio(values) }

// PickFastest builds candidate formats (nil means the analytic
// recommendations), times serial SpMV on each, and returns the fastest
// with all measurements — empirical autotuning in the OSKI style.
func PickFastest(c *COO, candidates []string, iters int) (string, []analyze.Timing, error) {
	return analyze.PickFastest(c, candidates, iters)
}

// FormatTiming is one measured candidate of PickFastest.
type FormatTiming = analyze.Timing
