package spmv

import (
	"time"

	"spmv/internal/autotune"
	"spmv/internal/core"
	"spmv/internal/formats"
)

// BuildOption configures Build. The zero configuration builds CSR with
// default encoder settings.
type BuildOption func(*buildConfig)

type buildConfig struct {
	name     string
	explicit bool
	opts     formats.Options
	auto     bool
	budget   time.Duration
	report   *TuneReport
}

// Autotuning vocabulary (DESIGN.md §15). TuneReport is what
// WithTuneReport fills in: the full serializable decision trace of an
// autotuned Build.
type (
	// TuneReport is the decision trace of one tuning run: extracted
	// features, every candidate with its predicted traffic and score
	// (ranked best-first), the chosen combo, and probe timings when a
	// budget allowed measurement.
	TuneReport = autotune.Report
	// TuneCandidate is one ranked (format, options, scheduler) combo.
	TuneCandidate = autotune.Candidate
	// TuneFeatures is the structural feature vector driving selection.
	TuneFeatures = autotune.Features
	// FormatSpec names a format with its encoder options and scheduler
	// hints — the unit of candidate ranking. Pass Chosen.Partition and
	// Chosen.Steal to ExecOptions to run the matrix as tuned.
	FormatSpec = formats.Spec
)

// WithFormat selects the storage format by registry name ("csr",
// "csr-du", "csr-vi", "csr-du-vi", "ell", ...); see FormatNames for the
// full list. An unknown name surfaces from Build as an ErrUsage listing
// every valid name. Mutually exclusive with WithAutoFormat.
func WithFormat(name string) BuildOption {
	return func(c *buildConfig) { c.name = name; c.explicit = true }
}

// WithDUOptions passes explicit CSR-DU encoder options (RLE units, unit
// split thresholds) to the delta-unit family ("csr-du", "csr-du-rle",
// "csr-du-vi"). Other formats ignore it.
func WithDUOptions(o DUOptions) BuildOption {
	return func(c *buildConfig) { c.opts.DU = o }
}

// WithWorkers sets the number of concurrent encoder workers for formats
// with a parallel builder (currently the CSR-DU family): 0 or 1 encodes
// serially, n > 1 uses n workers, negative means GOMAXPROCS. The
// encoded stream is byte-identical to the serial encoder's.
func WithWorkers(n int) BuildOption {
	return func(c *buildConfig) { c.opts.Workers = n }
}

// WithAutoFormat lets the autotuner choose the format: structural
// features are extracted from the triplets, every registry candidate
// is ranked by predicted bytes-per-SpMV under the traffic model
// (blended with statistically significant measured priors from the
// host's benchmark archive when one is configured), and the winner is
// built — "hybrid" with autotuned per-region selection. The analytic
// decision is deterministic; add WithAutoBudget to let measurement
// refine it. Retrieve the full decision trace with WithTuneReport.
func WithAutoFormat() BuildOption {
	return func(c *buildConfig) { c.auto = true }
}

// WithAutoBudget enables autotuning (implies WithAutoFormat) with a
// measured-probe refinement stage: the top-ranked candidates are
// short-benched within roughly d of wall time and the fastest measured
// combo wins. A plain-CSR baseline is always probed alongside, so the
// refined choice is never a combo that measured slower than CSR.
func WithAutoBudget(d time.Duration) BuildOption {
	return func(c *buildConfig) { c.auto = true; c.budget = d }
}

// WithTuneReport enables autotuning (implies WithAutoFormat) and
// copies the decision trace into *r, which must be non-nil. The report
// is self-contained and json.Marshal-able, so tuning decisions can be
// logged, diffed and replayed offline.
func WithTuneReport(r *TuneReport) BuildOption {
	return func(c *buildConfig) { c.auto = true; c.report = r }
}

// Build constructs a sparse matrix from triplets under functional
// options — the one-stop replacement for the NewXxx constructor family:
//
//	m, err := spmv.Build(c, spmv.WithFormat("csr-du"),
//		spmv.WithDUOptions(spmv.DUOptions{RLE: true}),
//		spmv.WithWorkers(8))
//
// With no options it builds baseline CSR. With WithAutoFormat the
// autotuner picks the format (and scheduler hints, reported via
// WithTuneReport):
//
//	var rep spmv.TuneReport
//	m, err := spmv.Build(c, spmv.WithAutoFormat(), spmv.WithTuneReport(&rep))
//	e, err := spmv.NewExecutorOpts(m, spmv.ExecOptions{
//		Partition: rep.Chosen.Partition, Steal: rep.Chosen.Steal})
//
// Every NewXxx constructor remains supported and returns its concrete
// type; Build returns the Format interface, which is what the
// executors and solvers take.
func Build(c *COO, opts ...BuildOption) (Format, error) {
	cfg := buildConfig{name: "csr"}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.auto {
		if cfg.explicit {
			return nil, core.Usagef("spmv: WithFormat(%q) and WithAutoFormat are mutually exclusive", cfg.name)
		}
		rep, err := autotune.Tune(c, autotune.Options{Budget: cfg.budget})
		if err != nil {
			return nil, err
		}
		if cfg.report != nil {
			*cfg.report = *rep
		}
		return autotune.Build(c, rep.Chosen)
	}
	return formats.BuildOpts(cfg.name, c, cfg.opts)
}

// buildAs routes a concrete-typed constructor through the options
// path: one registry build plus a type assertion back to the
// constructor's concrete return type.
func buildAs[T Format](c *COO, opts ...BuildOption) (T, error) {
	var zero T
	f, err := Build(c, opts...)
	if err != nil {
		return zero, err
	}
	return f.(T), nil
}
