package spmv

import (
	"spmv/internal/formats"
)

// BuildOption configures Build. The zero configuration builds CSR with
// default encoder settings.
type BuildOption func(*buildConfig)

type buildConfig struct {
	name string
	opts formats.Options
}

// WithFormat selects the storage format by registry name ("csr",
// "csr-du", "csr-vi", "csr-du-vi", "ell", ...); see FormatNames for the
// full list. An unknown name surfaces from Build as an ErrUsage listing
// every valid name.
func WithFormat(name string) BuildOption {
	return func(c *buildConfig) { c.name = name }
}

// WithDUOptions passes explicit CSR-DU encoder options (RLE units, unit
// split thresholds) to the delta-unit family ("csr-du", "csr-du-rle",
// "csr-du-vi"). Other formats ignore it.
func WithDUOptions(o DUOptions) BuildOption {
	return func(c *buildConfig) { c.opts.DU = o }
}

// WithWorkers sets the number of concurrent encoder workers for formats
// with a parallel builder (currently the CSR-DU family): 0 or 1 encodes
// serially, n > 1 uses n workers, negative means GOMAXPROCS. The
// encoded stream is byte-identical to the serial encoder's.
func WithWorkers(n int) BuildOption {
	return func(c *buildConfig) { c.opts.Workers = n }
}

// Build constructs a sparse matrix from triplets under functional
// options — the one-stop replacement for the NewXxx constructor family:
//
//	m, err := spmv.Build(c, spmv.WithFormat("csr-du"),
//		spmv.WithDUOptions(spmv.DUOptions{RLE: true}),
//		spmv.WithWorkers(8))
//
// With no options it builds baseline CSR. Every NewXxx constructor
// remains supported and returns its concrete type; Build returns the
// Format interface, which is what the executors and solvers take.
func Build(c *COO, opts ...BuildOption) (Format, error) {
	cfg := buildConfig{name: "csr"}
	for _, o := range opts {
		o(&cfg)
	}
	return formats.BuildOpts(cfg.name, c, cfg.opts)
}
