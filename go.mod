module spmv

go 1.22
