package spmv_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"spmv"
	"spmv/internal/matgen"
	"spmv/internal/testmat"
)

func TestClassicFormatsAgree(t *testing.T) {
	c := matgen.Stencil2D(9)
	x := testmat.RandVec(rand.New(rand.NewSource(1)), c.Cols())
	ref, _ := spmv.NewCSR(c)
	want := make([]float64, c.Rows())
	ref.SpMV(want, x)

	formats := []spmv.Format{}
	add := func(f spmv.Format, err error) {
		if err != nil {
			t.Fatal(err)
		}
		formats = append(formats, f)
	}
	add(spmv.NewELL(c))
	add(spmv.NewJDS(c))
	add(spmv.NewCDS(c))
	add(spmv.NewSymCSR(c, 1e-12))
	for _, f := range formats {
		got := make([]float64, c.Rows())
		f.SpMV(got, x)
		testmat.AssertClose(t, f.Name(), got, want, 1e-10)
	}
	// CDS beats everything on a pure stencil (no index data at all).
	cdsF := formats[2]
	if cdsF.SizeBytes() >= ref.SizeBytes() {
		t.Errorf("cds %d >= csr %d on stencil", cdsF.SizeBytes(), ref.SizeBytes())
	}
}

func TestAnalyzeAndRecommendPublic(t *testing.T) {
	c := matgen.Stencil2D(20)
	a := spmv.Analyze(c)
	if a.TTU <= 5 || !a.Symmetric || a.Diagonals != 5 {
		t.Fatalf("analysis: %+v", a)
	}
	recs := a.Recommend()
	if len(recs) < 4 {
		t.Fatalf("recommendations: %v", recs)
	}
	if recs[0].Ratio >= 1 {
		t.Errorf("top recommendation does not compress: %+v", recs[0])
	}
}

func TestRCMPublicFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := matgen.Symmetrize(matgen.Banded(rng, 200, 5, 4, matgen.Values{}))
	// Shuffle, then recover with RCM.
	perm := make([]int32, 200)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
	mess, err := spmv.PermuteMatrix(c, perm)
	if err != nil {
		t.Fatal(err)
	}
	rcm, err := spmv.RCM(mess)
	if err != nil {
		t.Fatal(err)
	}
	tidy, _ := spmv.PermuteMatrix(mess, rcm)
	if spmv.Bandwidth(tidy) >= spmv.Bandwidth(mess) {
		t.Errorf("bandwidth %d -> %d", spmv.Bandwidth(mess), spmv.Bandwidth(tidy))
	}
	// Vector round trip.
	x := testmat.RandVec(rng, 200)
	back := spmv.UnpermuteVec(spmv.PermuteVec(x, rcm), rcm)
	testmat.AssertClose(t, "perm roundtrip", back, x, 0)
}

func TestMixedPrecisionPublicFlow(t *testing.T) {
	c := matgen.Stencil2D(10)
	full, _ := spmv.NewCSR(c)
	low, err := spmv.NewCSR32(c)
	if err != nil {
		t.Fatal(err)
	}
	if low.SizeBytes() >= full.SizeBytes() {
		t.Error("csr32 not smaller than csr")
	}
	opF, _ := spmv.NewOperator(full)
	opL, _ := spmv.NewOperator(low)
	b := make([]float64, opF.N)
	b[0] = 1
	x := make([]float64, opF.N)
	res, err := spmv.Refine(opF, opL, b, x, 1e-11, 50, 1000)
	if err != nil || !res.Converged {
		t.Fatalf("refine: %v %+v", err, res)
	}
}

func TestBiCGSTABPublic(t *testing.T) {
	c := matgen.Stencil2D(8)
	ns := spmv.NewCOO(c.Rows(), c.Cols())
	for k := 0; k < c.Len(); k++ {
		i, j, v := c.At(k)
		if j == i+1 {
			v += 0.3
		}
		ns.Add(i, j, v)
	}
	f, _ := spmv.NewCSR(ns)
	op, _ := spmv.NewOperator(f)
	b := make([]float64, op.N)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, op.N)
	res, err := spmv.BiCGSTAB(op, b, x, 1e-9, 5000)
	if err != nil || !res.Converged {
		t.Fatalf("bicgstab: %v %+v", err, res)
	}
}

func TestValueCompressionPublic(t *testing.T) {
	vals := []float64{1, 2, 3, 2, 1, 2, 3, 2, 1}
	comp := spmv.CompressValues(vals)
	back, err := spmv.DecompressValues(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatal("lossy")
		}
	}
	if r := spmv.ValueCompressibility(vals); r <= 0 || math.IsNaN(r) {
		t.Errorf("ratio = %v", r)
	}
}

func TestMatfilePublic(t *testing.T) {
	c := matgen.Stencil2D(8)
	m, _ := spmv.NewCSRDU(c)
	var buf bytes.Buffer
	if err := spmv.WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := spmv.ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() || back.Name() != "csr-du" {
		t.Errorf("read back %s/%d", back.Name(), back.NNZ())
	}
}

// TestProfilePublic exercises the profiling exports: the stream split
// reconciles with the traffic model and a measured attribution divides
// the bandwidth across streams.
func TestProfilePublic(t *testing.T) {
	c := matgen.Stencil2D(30)
	f, err := spmv.BuildFormat("csr-du", c)
	if err != nil {
		t.Fatal(err)
	}
	p := spmv.Profile(f)
	var sum int64
	for _, s := range p.Streams {
		sum += s.Bytes
	}
	if sum != spmv.BytesPerSpMV(f) {
		t.Errorf("stream bytes %d != BytesPerSpMV %d", sum, spmv.BytesPerSpMV(f))
	}
	if p.DU == nil || p.DU.Units == 0 {
		t.Error("csr-du profile missing unit statistics")
	}
	a := spmv.AttributeBandwidth(p, 1e-3, nil)
	if a.GBps <= 0 || len(a.Streams) != len(p.Streams) {
		t.Errorf("attribution: %+v", a)
	}

	series := spmv.NewProfileSeries(4)
	r, err := spmv.NewExecutorOpts(f, spmv.ExecOptions{Threads: 2, Collector: series})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	y := make([]float64, f.Rows())
	x := make([]float64, f.Cols())
	for i := 0; i < 3; i++ {
		if err := r.Run(y, x); err != nil {
			t.Fatal(err)
		}
	}
	doc := series.Doc()
	if doc.Summary.Runs != 3 {
		t.Errorf("series runs = %d, want 3", doc.Summary.Runs)
	}
}
