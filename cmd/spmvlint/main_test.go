package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestModuleSourceRulesClean asserts the repo itself carries zero
// findings for the full source-rule suite — the concurrency flow
// rules included — with the allowlist disabled, so nothing can hide
// behind a suppression. The compile and alloc gates are skipped here
// (they shell out to go build and have their own tests under
// internal/srccheck/compile); verify.sh runs the full three layers.
func TestModuleSourceRulesClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(t.TempDir(), "empty-allowlist")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	code := run([]string{
		"-disable=compile,alloc",
		"-root=" + root,
		"-allowlist=" + empty,
		"./...",
	})
	if code != 0 {
		t.Fatalf("spmvlint source rules = exit %d, want 0 (run `go run ./cmd/spmvlint -disable=compile,alloc ./...` for the findings)", code)
	}
}
