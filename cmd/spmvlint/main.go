// Command spmvlint runs the project's static-analysis gate: the
// source-level rule suite of internal/srccheck (layer 1) and the
// compiled-code BCE/escape regression gate of internal/srccheck/compile
// (layer 2).
//
// Usage:
//
//	spmvlint [flags] [./...]
//
// With no package arguments (or "./..."), the whole module is checked.
// Exit status is 1 when any rule fires or the compile gate regresses,
// 2 on internal errors, 0 otherwise.
//
// Flags:
//
//	-json             machine-readable output
//	-update-baseline  rewrite the compile-gate baselines from current diagnostics
//	-disable=LIST     comma-separated rule names to skip ("compile" skips layer 2)
//	-root=DIR         module root (default: nearest go.mod at or above the cwd)
//	-allowlist=FILE   allowlist path (default: <root>/.spmvlint)
//
// The allowlist lives at <root>/.spmvlint; see internal/srccheck's
// Allowlist for the format. Keep it nearly empty: fix findings instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spmv/internal/srccheck"
	"spmv/internal/srccheck/compile"
)

func main() { os.Exit(run(os.Args[1:])) }

type jsonReport struct {
	Issues       []srccheck.Issue `json:"issues"`
	Regressions  []compile.Delta  `json:"regressions,omitempty"`
	Improvements []compile.Delta  `json:"improvements,omitempty"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("spmvlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	update := fs.Bool("update-baseline", false, "rewrite compile-gate baselines from current diagnostics")
	disable := fs.String("disable", "", "comma-separated rule names to skip (\"compile\" skips the BCE/escape gate)")
	rootFlag := fs.String("root", "", "module root (default: nearest go.mod at or above the cwd)")
	allowFlag := fs.String("allowlist", "", "allowlist file (default: <root>/.spmvlint)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spmvlint [flags] [./...]\n\nrules:\n")
		for _, r := range srccheck.DefaultRules() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", r.Name(), r.Doc())
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", "compile", "BCE/escape diagnostics must not regress against internal/srccheck/baseline")
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root := *rootFlag
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
	}
	disabled := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	prefixes, err := packagePrefixes(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
		return 2
	}

	// Layer 1: source rules.
	var rules []srccheck.Rule
	for _, r := range srccheck.DefaultRules() {
		if !disabled[r.Name()] {
			rules = append(rules, r)
		}
	}
	var issues []srccheck.Issue
	if len(rules) > 0 {
		mod, err := srccheck.Load(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
		allowPath := *allowFlag
		if allowPath == "" {
			allowPath = filepath.Join(root, ".spmvlint")
		}
		allow, err := srccheck.LoadAllowlist(allowPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
		issues = filterIssues(srccheck.Run(mod, rules, allow), prefixes)
	}

	// Layer 2: compile gate.
	var regressions, improvements []compile.Delta
	gateErr := false
	if !disabled["compile"] {
		cfg := &compile.Config{Root: root}
		byPkg, err := cfg.Collect()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
		baselineDir := filepath.Join(root, "internal", "srccheck", "baseline")
		pkgs := make([]string, 0, len(byPkg))
		for pkg := range byPkg {
			pkgs = append(pkgs, pkg)
		}
		for _, pkg := range pkgs {
			if *update {
				if err := compile.WriteBaseline(baselineDir, pkg, byPkg[pkg]); err != nil {
					fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
					return 2
				}
				continue
			}
			base, err := compile.LoadBaseline(baselineDir, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
				return 2
			}
			reg, imp := compile.Compare(base, byPkg[pkg], srccheck.IsHotFunc)
			regressions = append(regressions, reg...)
			improvements = append(improvements, imp...)
		}
	}

	// Report. Hot-function regressions fail the gate; cold ones and
	// stale baseline entries are advisory.
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		report := jsonReport{Issues: issues, Regressions: regressions, Improvements: improvements}
		if report.Issues == nil {
			report.Issues = []srccheck.Issue{}
		}
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
	} else {
		for _, issue := range issues {
			fmt.Println(issue.String())
		}
		for _, d := range regressions {
			verdict := "warning: new compiler diagnostic (cold path)"
			if d.Hot {
				verdict = "compile gate: new diagnostic in hot kernel"
			}
			fmt.Printf("%s: %s\n", verdict, d.String())
		}
		for _, d := range improvements {
			fmt.Printf("stale baseline entry (diagnostics improved — lock in with -update-baseline): %s\n", d.String())
		}
	}
	for _, d := range regressions {
		if d.Hot {
			gateErr = true
		}
	}
	if len(issues) > 0 || gateErr {
		return 1
	}
	return 0
}

// findModuleRoot walks upward from the cwd to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod at or above the working directory")
		}
		dir = parent
	}
}

// packagePrefixes converts package arguments ("./...",
// "./internal/...", "internal/csr") into module-relative path
// prefixes; empty means the whole module.
func packagePrefixes(args []string) ([]string, error) {
	var prefixes []string
	for _, arg := range args {
		p := strings.TrimPrefix(filepath.ToSlash(arg), "./")
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		if p == "" {
			return nil, nil // ./... covers everything
		}
		prefixes = append(prefixes, p)
	}
	return prefixes, nil
}

// filterIssues keeps issues whose file falls under one of the
// prefixes (all issues when prefixes is empty).
func filterIssues(issues []srccheck.Issue, prefixes []string) []srccheck.Issue {
	if len(prefixes) == 0 {
		return issues
	}
	var out []srccheck.Issue
	for _, issue := range issues {
		for _, p := range prefixes {
			if strings.HasPrefix(issue.File, p+"/") || strings.HasPrefix(issue.File, p) {
				out = append(out, issue)
				break
			}
		}
	}
	return out
}
