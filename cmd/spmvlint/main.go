// Command spmvlint runs the project's static-analysis gate: the
// source-level rule suite of internal/srccheck (layer 1, including the
// CFG-based concurrency rules), the compiled-code BCE/escape
// regression gate of internal/srccheck/compile over the kernel
// packages (layer 2), and the request-path heap-allocation gate over
// the serving stack (layer 3).
//
// Usage:
//
//	spmvlint [flags] [./...]
//
// With no package arguments (or "./..."), the whole module is checked.
// Exit status is 1 when any rule fires, the kernel gate regresses in a
// hot function, or the alloc gate regresses anywhere, 2 on internal
// errors, 0 otherwise.
//
// Flags:
//
//	-json             machine-readable output
//	-update-baseline  rewrite the compile/alloc-gate baselines from current diagnostics
//	-disable=LIST     comma-separated rule names to skip ("compile" skips
//	                  the BCE/escape gate, "alloc" the allocation gate)
//	-root=DIR         module root (default: nearest go.mod at or above the cwd)
//	-allowlist=FILE   allowlist path (default: <root>/.spmvlint)
//	-prune            rewrite the allowlist dropping entries that no longer match
//
// The allowlist lives at <root>/.spmvlint; see internal/srccheck's
// Allowlist for the format. Keep it nearly empty: fix findings instead.
// Entries that no longer suppress anything are themselves an error —
// run with -prune to drop them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spmv/internal/srccheck"
	"spmv/internal/srccheck/compile"
)

func main() { os.Exit(run(os.Args[1:])) }

type jsonReport struct {
	Issues            []srccheck.Issue      `json:"issues"`
	Regressions       []compile.Delta       `json:"regressions,omitempty"`
	Improvements      []compile.Delta       `json:"improvements,omitempty"`
	AllocRegressions  []compile.Delta       `json:"alloc_regressions,omitempty"`
	AllocImprovements []compile.Delta       `json:"alloc_improvements,omitempty"`
	StaleAllowlist    []srccheck.StaleEntry `json:"stale_allowlist,omitempty"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("spmvlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	update := fs.Bool("update-baseline", false, "rewrite compile-gate baselines from current diagnostics")
	disable := fs.String("disable", "", "comma-separated rule names to skip (\"compile\" skips the BCE/escape gate)")
	rootFlag := fs.String("root", "", "module root (default: nearest go.mod at or above the cwd)")
	allowFlag := fs.String("allowlist", "", "allowlist file (default: <root>/.spmvlint)")
	prune := fs.Bool("prune", false, "rewrite the allowlist dropping entries that no longer match any finding")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spmvlint [flags] [./...]\n\nrules:\n")
		for _, r := range srccheck.DefaultRules() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", r.Name(), r.Doc())
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", "compile", "BCE/escape diagnostics must not regress against internal/srccheck/baseline")
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", "alloc", "request-path heap allocations must not regress against internal/srccheck/baseline")
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root := *rootFlag
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
	}
	disabled := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	prefixes, err := packagePrefixes(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
		return 2
	}

	// Layer 1: source rules.
	var rules []srccheck.Rule
	for _, r := range srccheck.DefaultRules() {
		if !disabled[r.Name()] {
			rules = append(rules, r)
		}
	}
	// Staleness is only decidable when every source rule ran over the
	// whole module: a partial run would report merely-unexercised
	// entries as dead.
	fullRun := len(prefixes) == 0 && len(rules) == len(srccheck.DefaultRules())
	var issues []srccheck.Issue
	var stale []srccheck.StaleEntry
	if len(rules) > 0 {
		mod, err := srccheck.Load(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
		allowPath := *allowFlag
		if allowPath == "" {
			allowPath = filepath.Join(root, ".spmvlint")
		}
		allow, err := srccheck.LoadAllowlist(allowPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
		issues = filterIssues(srccheck.Run(mod, rules, allow), prefixes)
		if fullRun {
			stale = allow.Stale()
		}
		if *prune {
			if !fullRun {
				fmt.Fprintf(os.Stderr, "spmvlint: -prune needs a full run: no -disable of source rules, no package arguments\n")
				return 2
			}
			if len(stale) > 0 {
				if err := srccheck.PruneAllowlist(allowPath, stale); err != nil {
					fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
					return 2
				}
				fmt.Fprintf(os.Stderr, "spmvlint: pruned %d stale allowlist entries from %s\n", len(stale), allowPath)
			}
			stale = nil
		}
	} else if *prune {
		fmt.Fprintf(os.Stderr, "spmvlint: -prune needs a full run: no -disable of source rules, no package arguments\n")
		return 2
	}

	// Layers 2 and 3: the BCE/escape kernel gate and the request-path
	// allocation gate share one instrumented build over the union of
	// their package sets.
	var regressions, improvements []compile.Delta
	var allocRegressions, allocImprovements []compile.Delta
	gateErr := false
	if !disabled["compile"] || !disabled["alloc"] {
		union := append([]string{}, compile.KernelPackages()...)
		seen := map[string]bool{}
		for _, p := range union {
			seen[p] = true
		}
		for _, p := range compile.AllocPackages() {
			if !seen[p] {
				union = append(union, p)
			}
		}
		cfg := &compile.Config{Root: root, Packages: union}
		byPkg, err := cfg.Collect()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
		baselineDir := filepath.Join(root, "internal", "srccheck", "baseline")
		if !disabled["compile"] {
			for _, pkg := range compile.KernelPackages() {
				if *update {
					if err := compile.WriteBaseline(baselineDir, pkg, byPkg[pkg]); err != nil {
						fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
						return 2
					}
					continue
				}
				base, err := compile.LoadBaseline(baselineDir, pkg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
					return 2
				}
				reg, imp := compile.Compare(base, byPkg[pkg], srccheck.IsHotFunc)
				regressions = append(regressions, reg...)
				improvements = append(improvements, imp...)
			}
		}
		if !disabled["alloc"] {
			for _, pkg := range compile.AllocPackages() {
				filtered := compile.FilterAlloc(byPkg[pkg], srccheck.IsRequestPathFunc)
				key := compile.AllocBaselineKey(pkg)
				if *update {
					if err := compile.WriteBaseline(baselineDir, key, filtered); err != nil {
						fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
						return 2
					}
					continue
				}
				base, err := compile.LoadBaseline(baselineDir, key)
				if err != nil {
					fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
					return 2
				}
				reg, imp := compile.Compare(base, filtered, nil)
				allocRegressions = append(allocRegressions, reg...)
				allocImprovements = append(allocImprovements, imp...)
			}
		}
	}

	// Report. Hot-function kernel regressions and every alloc-gate
	// regression fail the run; cold kernel regressions and stale
	// baseline entries are advisory.
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		report := jsonReport{
			Issues: issues, Regressions: regressions, Improvements: improvements,
			AllocRegressions: allocRegressions, AllocImprovements: allocImprovements,
			StaleAllowlist: stale,
		}
		if report.Issues == nil {
			report.Issues = []srccheck.Issue{}
		}
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "spmvlint: %v\n", err)
			return 2
		}
	} else {
		for _, issue := range issues {
			fmt.Println(issue.String())
		}
		for _, d := range regressions {
			verdict := "warning: new compiler diagnostic (cold path)"
			if d.Hot {
				verdict = "compile gate: new diagnostic in hot kernel"
			}
			fmt.Printf("%s: %s\n", verdict, d.String())
		}
		for _, d := range allocRegressions {
			fmt.Printf("alloc gate: new heap allocation on the request path: %s\n", d.String())
		}
		for _, d := range improvements {
			fmt.Printf("stale baseline entry (diagnostics improved — lock in with -update-baseline): %s\n", d.String())
		}
		for _, d := range allocImprovements {
			fmt.Printf("stale alloc baseline entry (allocations improved — lock in with -update-baseline): %s\n", d.String())
		}
		for _, s := range stale {
			fmt.Printf("stale allowlist entry (matches no finding — drop it or run -prune): line %d: %s\n", s.Line, s.Text)
		}
	}
	for _, d := range regressions {
		if d.Hot {
			gateErr = true
		}
	}
	if len(allocRegressions) > 0 {
		gateErr = true
	}
	if len(issues) > 0 || gateErr || len(stale) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks upward from the cwd to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod at or above the working directory")
		}
		dir = parent
	}
}

// packagePrefixes converts package arguments ("./...",
// "./internal/...", "internal/csr") into module-relative path
// prefixes; empty means the whole module.
func packagePrefixes(args []string) ([]string, error) {
	var prefixes []string
	for _, arg := range args {
		p := strings.TrimPrefix(filepath.ToSlash(arg), "./")
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		if p == "" {
			return nil, nil // ./... covers everything
		}
		prefixes = append(prefixes, p)
	}
	return prefixes, nil
}

// filterIssues keeps issues whose file falls under one of the
// prefixes (all issues when prefixes is empty).
func filterIssues(issues []srccheck.Issue, prefixes []string) []srccheck.Issue {
	if len(prefixes) == 0 {
		return issues
	}
	var out []srccheck.Issue
	for _, issue := range issues {
		for _, p := range prefixes {
			if strings.HasPrefix(issue.File, p+"/") || strings.HasPrefix(issue.File, p) {
				out = append(out, issue)
				break
			}
		}
	}
	return out
}
