// Command mtxconvert converts between Matrix Market text files and the
// library's binary container (encode once, load compressed), choosing
// any supported storage format for the binary side.
//
// Usage:
//
//	mtxconvert -to csr-du matrix.mtx matrix.spmv     # text -> binary
//	mtxconvert -from matrix.spmv matrix.mtx          # binary -> text
package main

import (
	"flag"
	"fmt"
	"os"

	"spmv"
)

func main() {
	to := flag.String("to", "csr-du", "target format for binary output: csr|csr-du|csr-du-rle|csr-vi")
	from := flag.Bool("from", false, "convert binary container back to Matrix Market")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mtxconvert [-to FORMAT] in.mtx out.spmv")
		fmt.Fprintln(os.Stderr, "       mtxconvert -from in.spmv out.mtx")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	inPath, outPath := flag.Arg(0), flag.Arg(1)
	if err := run(inPath, outPath, *to, *from); err != nil {
		fmt.Fprintln(os.Stderr, "mtxconvert:", err)
		os.Exit(1)
	}
}

func run(inPath, outPath, format string, fromBinary bool) (err error) {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := in.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := out.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	if fromBinary {
		f, err := spmv.ReadMatrix(in)
		if err != nil {
			return err
		}
		c, err := toCOO(f)
		if err != nil {
			return err
		}
		return spmv.WriteMatrixMarket(out, c)
	}

	c, err := spmv.ReadMatrixMarket(in)
	if err != nil {
		return err
	}
	var f spmv.Format
	switch format {
	case "csr":
		f, err = spmv.NewCSR(c)
	case "csr-du":
		f, err = spmv.NewCSRDU(c)
	case "csr-du-rle":
		f, err = spmv.NewCSRDUOpts(c, spmv.DUOptions{RLE: true})
	case "csr-vi":
		f, err = spmv.NewCSRVI(c)
	default:
		return fmt.Errorf("unsupported container format %q", format)
	}
	if err != nil {
		return err
	}
	if err := spmv.WriteMatrix(out, f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mtxconvert: %s: %d nnz as %s, %.1f%% of CSR\n",
		outPath, f.NNZ(), f.Name(), 100*spmv.CompressionRatio(f))
	return nil
}

// toCOO decodes a container format back to triplets via its ForEach.
func toCOO(f spmv.Format) (*spmv.COO, error) {
	type forEacher interface {
		ForEach(func(i, j int, v float64))
	}
	fe, ok := f.(forEacher)
	if !ok {
		return nil, fmt.Errorf("format %s cannot be decoded to triplets", f.Name())
	}
	c := spmv.NewCOO(f.Rows(), f.Cols())
	fe.ForEach(func(i, j int, v float64) { c.Add(i, j, v) })
	c.Finalize()
	return c, nil
}
