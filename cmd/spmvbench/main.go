// Command spmvbench runs the paper's experiments with wall-clock
// timing on the host machine: real goroutines, real caches. Shapes
// depend on the host's memory system; for the deterministic
// reproduction of the paper's platform use cmd/spmvsim.
//
// Usage:
//
//	spmvbench [-experiment all|table2|table3|table4|fig7|fig8]
//	          [-scale 0.25] [-iters 10] [-threads 1,2,4,8] [-v]
//	          [-metrics] [-debug localhost:6060]
//	          [-rhs 1,2,4,8] [-rhsmatrix banded-l-q128]
//	          [-profile] [-matrix banded-l-q128] [-format csr-du]
//	          [-auto] [-autobudget 2s]
//	          [-trace out.trace] [-timeline out.json]
//	          [-archive FILE|DIR] [-compare OLD.json]
//	          [-samples 5] [-slowdown 0.10]
//	          [-partition row|col|nnz] [-steal]
//	          [-roofprobe] [-probe-ms 0] [-roofline] [-roofdir benchdata]
//
// With -auto the experiments are replaced by the autotuner: each suite
// matrix named by -matrix (comma-separated) is feature-extracted, every
// registry (format, scheduler) candidate is ranked by predicted
// bytes-per-SpMV, the winner is built and verified, and the full
// TuneReport decision traces are emitted as one JSON array on stdout.
// With -autobudget the top-ranked candidates are additionally
// short-benched within the given wall-clock budget and the fastest
// measured combo wins. With -archive the probe timings are recorded
// into the benchmark archive and prior runs' measurements bias future
// rankings (Welch-significant cells only).
//
// With -roofprobe the experiments are replaced by the STREAM-style
// measured-bandwidth probe: copy/scale/triad at 1..max(-threads)
// goroutines, written as benchdata/ROOF_<host>.json (or -roofdir).
// -probe-ms bounds the probe's wall time (the working set shrinks to
// fit; every cell still reports). When a previous archive exists the
// probe Welch-tests bandwidth drift against it before overwriting.
//
// With -roofline the paper tables are replaced by the roofline table:
// every measured cell's effective GB/s against the host's bandwidth
// ceiling at that thread count (%roof), using the -roofdir probe
// archive when present and the analytic machine peak otherwise.
// Combined with -metrics the JSON report carries the same
// ceiling_gbps/pct_roofline fields per cell instead.
//
// With -partition nnz chunk boundaries are placed every nnz/threads
// stored elements, splitting long rows across workers (CSR only;
// other formats fall back to row partitioning). With -steal the row
// executor over-decomposes into ~4x threads chunks and lets idle
// workers steal queued chunks; per-run steal counts appear in the
// -metrics report.
//
// With -rhs the tables are replaced by the multi-RHS sweep: batched
// SpMV (RunBatch) over row-major n×k panels at each listed k, per
// format, reporting seconds and modeled bytes per result vector. The
// matrix stream is read once per multiplication regardless of k, so
// bytes-per-vector falls towards the dense-vector floor as k grows.
//
// With -metrics the tables are replaced by a single JSON document on
// stdout: per matrix, per format and per thread count the measured
// seconds per iteration, effective bandwidth (GB/s), static and
// measured load imbalance, compressed size ratio and the last run's
// per-chunk telemetry. Progress notes move to stderr so stdout stays
// machine-parseable.
//
// With -profile the experiments are replaced by a structural profile
// of one (matrix, format) cell: the format's per-stream byte split of
// the §II-B traffic model (reconciling exactly with the model's
// working-set total), the CSR-DU ctl-unit and CSR-VI dictionary
// statistics where applicable, and — after a measured run at the
// highest requested thread count — a bandwidth attribution telling
// which stream dominates. Combined with -roofline the attribution is
// anchored to the host ceiling (ceiling_gbps / pct_roofline fields).
// JSON on stdout.
//
// With -trace FILE the measured loops are recorded with runtime/trace:
// one task per Run and one region per chunk per worker (viewable with
// `go tool trace FILE`). With -timeline FILE a per-iteration JSON
// time series (wall seconds and load imbalance per measured run) is
// written.
//
// With -archive PATH the measured cells are written as a benchmark
// archive (BENCH_<host>.json when PATH is a directory); -compare
// OLD.json checks this run against a previous archive and exits 1 on a
// statistically significant slowdown beyond -slowdown. Archive and
// compare modes repeat each cell -samples times (default 5) so the
// comparator has a spread to test.
//
// With -debug ADDR a background HTTP server exposes Go's standard
// debug endpoints while the benchmark runs: /debug/vars (expvar,
// including the live "spmv" telemetry snapshot) and /debug/pprof
// (CPU/heap profiles; worker goroutines carry spmv_partition and
// spmv_worker pprof labels).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/exec"
	"runtime"
	rtrace "runtime/trace"
	"strconv"
	"strings"
	"time"

	"spmv/internal/autotune"
	"spmv/internal/bench"
	"spmv/internal/core"
	"spmv/internal/obs"
	"spmv/internal/prof"
	"spmv/internal/prof/archive"
	"spmv/internal/roofline"
)

// archiveMeta collects the provenance of an archive record: hostname,
// platform and — best-effort, ignoring errors outside a git checkout —
// the current commit.
func archiveMeta() bench.ArchiveMeta {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	sha := ""
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		sha = strings.TrimSpace(string(out))
	}
	return bench.ArchiveMeta{
		Host:   host,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		GitSHA: sha,
		Date:   time.Now().UTC().Format(time.RFC3339),
	}
}

func main() {
	experiment := flag.String("experiment", "all", "table2|table3|table4|fig7|fig8|all")
	scale := flag.Float64("scale", 0.25, "matrix size multiplier (1.0 = paper scale)")
	iters := flag.Int("iters", 10, "timed iterations per configuration")
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	verbose := flag.Bool("v", false, "print per-matrix progress")
	verify := flag.Bool("verify", false, "structurally verify every built format before timing it")
	metrics := flag.Bool("metrics", false, "emit a JSON metrics report on stdout instead of tables")
	debugAddr := flag.String("debug", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	rhs := flag.String("rhs", "", "comma-separated RHS panel widths: run the batched multi-vector sweep instead of the tables")
	rhsMatrix := flag.String("rhsmatrix", "banded-l-q128", "suite matrix for the -rhs sweep")
	profileFlag := flag.Bool("profile", false, "emit the structural profile of one (matrix, format) cell as JSON instead of running experiments")
	matrixName := flag.String("matrix", "banded-l-q128", "suite matrix for -profile")
	formatName := flag.String("format", "csr-du", "format for -profile")
	traceFile := flag.String("trace", "", "record the measured loops with runtime/trace into this file")
	timelineFile := flag.String("timeline", "", "write a per-iteration JSON time series to this file")
	archivePath := flag.String("archive", "", "write a benchmark archive to this file (or BENCH_<host>.json inside this directory)")
	comparePath := flag.String("compare", "", "compare this run against a previous archive file; exit 1 on regression")
	samples := flag.Int("samples", 0, "repeated measurements per cell (default 5 with -archive/-compare)")
	slowdown := flag.Float64("slowdown", 0.10, "fractional slowdown -compare treats as a regression")
	partitionFlag := flag.String("partition", "", "execution scheme: row (default), col, or nnz (non-zero-split boundaries; CSR only, other formats fall back to row)")
	steal := flag.Bool("steal", false, "use the work-stealing row executor (over-decomposed chunk queues)")
	auto := flag.Bool("auto", false, "autotune the -matrix suite matrices (comma-separated) and emit the TuneReport decision traces as JSON")
	autoBudget := flag.Duration("autobudget", 0, "with -auto, wall-clock budget for measured probe refinement (0 = analytic only)")
	roofProbe := flag.Bool("roofprobe", false, "measure the host's STREAM bandwidth and write ROOF_<host>.json into -roofdir instead of running experiments")
	probeMS := flag.Int("probe-ms", 0, "with -roofprobe, wall-clock budget for the probe in milliseconds (0 = unbudgeted ~32 MiB arrays)")
	roofFlag := flag.Bool("roofline", false, "print the roofline table (measured GB/s vs host ceiling per cell) instead of the paper tables")
	roofDir := flag.String("roofdir", "benchdata", "directory holding the per-host ROOF_<host>.json probe archives")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Native = true
	cfg.Scale = *scale
	cfg.WarmIters = *iters
	cfg.Verify = *verify
	cfg.Metrics = *metrics
	cfg.Samples = *samples
	cfg.Partition = *partitionFlag
	cfg.Steal = *steal
	if *steal && *partitionFlag != "" && *partitionFlag != "row" {
		fmt.Fprintf(os.Stderr, "spmvbench: -steal applies to the row partition, not %q\n", *partitionFlag)
		os.Exit(2)
	}

	// Archive and compare modes need per-cell traffic metrics and, for a
	// meaningful significance test, repeated samples.
	archMode := *archivePath != "" || *comparePath != ""
	if archMode {
		cfg.Metrics = true
		if cfg.Samples <= 0 {
			cfg.Samples = 5
		}
	}

	// With -metrics or -profile, stdout carries exactly one JSON
	// document; archive mode prints the comparison there. All
	// human-facing notes go to stderr in those modes.
	notes := os.Stdout
	if *metrics || *profileFlag || archMode || *auto {
		notes = os.Stderr
	}
	note := func(format string, args ...any) {
		if _, err := fmt.Fprintf(notes, format, args...); err != nil {
			os.Exit(1)
		}
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	cfg.Threads = nil
	for _, t := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(t))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "spmvbench: bad thread count %q\n", t)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, n)
	}

	if *debugAddr != "" {
		rec := obs.NewRecorder()
		cfg.Recorder = rec
		if err := obs.PublishExpvar("spmv", rec); err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
		go func() {
			// DefaultServeMux already carries /debug/vars (expvar) and
			// /debug/pprof (net/http/pprof) via their package inits.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "spmvbench: debug server:", err)
			}
		}()
		note("# debug: http://%s/debug/vars and /debug/pprof\n", *debugAddr)
	}

	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
	}

	// -roofprobe: measure the host's bandwidth ceilings and persist the
	// probe archive; experiments are skipped.
	if *roofProbe {
		maxTh := cfg.Threads[len(cfg.Threads)-1]
		note("# roofprobe: STREAM copy/scale/triad at 1..%d threads (budget %dms)\n", maxTh, *probeMS)
		f, err := roofline.Probe(roofline.ProbeOptions{
			MaxThreads: maxTh,
			Budget:     time.Duration(*probeMS) * time.Millisecond,
		})
		die(err)
		die(os.MkdirAll(*roofDir, 0o755))
		path := roofline.DefaultPath(*roofDir, f.Host)
		if old, err := roofline.ReadFile(path); err == nil {
			regs, derr := roofline.Drift(old, f, 0)
			die(derr)
			if len(regs) > 0 {
				note("# roofprobe: %d cell(s) drifted significantly vs previous %s\n", len(regs), path)
			}
		}
		die(roofline.WriteFile(path, f))
		fmt.Printf("Roofline probe: %s (%s/%s, %d cores, arrays %d elems)\n",
			f.Host, f.GoOS, f.GoArch, f.Cores, f.Results[0].ArrayLen)
		fmt.Printf("%-8s %3s | %10s %10s\n", "kernel", "th", "GB/s", "stddev")
		for _, r := range f.Results {
			fmt.Printf("%-8s %3d | %10.3f %10.3f\n", r.Kernel, r.Threads, r.MeanGBps, r.StddevGBps)
		}
		m, err := roofline.FromFile(f)
		die(err)
		fmt.Printf("ceilings:")
		for t := 1; t <= m.MaxThreads(); t++ {
			if c, ok := m.Ceilings[t]; ok {
				fmt.Printf("  t%d=%.3f", t, c)
			}
		}
		fmt.Println(" GB/s")
		note("# roofprobe: wrote %s\n", path)
		return
	}

	// -roofline: anchor every measured cell to the host's bandwidth
	// model — the probe archive when one exists, the analytic machine
	// peak otherwise.
	if *roofFlag {
		cfg.Metrics = true
		m, err := roofline.Load(*roofDir)
		if err != nil {
			m = roofline.Analytic(cfg.Machine)
			note("# roofline: no probe archive in %s; using analytic peak %.2f GB/s (run -roofprobe to measure)\n",
				*roofDir, m.CeilingGBps(0))
		}
		cfg.Roofline = m
	}

	// -trace: record the measured loops. The executors emit trace tasks
	// and regions only when a collector is attached, so ensure one is.
	// stopTrace is called once, right after measurement, so the exits on
	// the output paths cannot lose buffered trace data.
	stopTrace := func() {}
	if *traceFile != "" {
		tf, err := os.Create(*traceFile)
		die(err)
		if cfg.Recorder == nil {
			cfg.Recorder = obs.NewRecorder()
		}
		die(rtrace.Start(tf))
		stopTrace = func() {
			rtrace.Stop()
			die(tf.Close())
			note("# trace: wrote %s\n", *traceFile)
		}
	}

	// -timeline: a prof.Series collector sees every measured run.
	var series *prof.Series
	if *timelineFile != "" {
		series = prof.NewSeries(0)
		cfg.Collector = series
	}
	writeTimeline := func() {
		if series == nil {
			return
		}
		tf, err := os.Create(*timelineFile)
		die(err)
		die(series.WriteJSON(tf))
		die(tf.Close())
		note("# timeline: wrote %s (%d runs)\n", *timelineFile, series.Doc().Summary.Runs)
	}

	if *auto {
		th := cfg.Threads[len(cfg.Threads)-1]
		archPath := *archivePath
		if archPath != "" {
			if st, err := os.Stat(archPath); err == nil && st.IsDir() {
				archPath = archive.DefaultPath(archPath, archiveMeta().Host)
			}
		}
		type autoCell struct {
			Matrix string           `json:"matrix"`
			Report *autotune.Report `json:"report"`
		}
		var cells []autoCell
		for _, name := range strings.Split(*matrixName, ",") {
			name = strings.TrimSpace(name)
			spec, err := bench.FindSpec(name)
			die(err)
			c := spec.Gen(cfg.Scale)
			note("# auto: tuning %s (%d x %d, %d nnz) at %d threads\n",
				name, c.Rows(), c.Cols(), c.Len(), th)
			rep, err := autotune.Tune(c, autotune.Options{
				Threads: th, Budget: *autoBudget,
				ArchivePath: archPath, MatrixName: name,
			})
			die(err)
			f, err := autotune.Build(c, rep.Chosen)
			die(err)
			if err := core.Verify(f); err != nil {
				die(fmt.Errorf("auto: %s: chosen %s failed verify: %w", name, rep.Chosen.Name(), err))
			}
			if rep.ArchiveNote != "" {
				note("# auto: %s: archive: %s\n", name, rep.ArchiveNote)
			}
			note("# auto: %s -> %s (%d predicted bytes/SpMV, probed=%v)\n",
				name, rep.Chosen.Name(), rep.ChosenPredBytes, rep.Probed)
			cells = append(cells, autoCell{Matrix: name, Report: rep})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		die(enc.Encode(cells))
		return
	}

	if *profileFlag {
		th := cfg.Threads[len(cfg.Threads)-1]
		p, err := bench.ProfileCell(cfg, *matrixName, *formatName, th)
		stopTrace()
		die(err)
		writeTimeline()
		die(p.WriteJSON(os.Stdout))
		return
	}

	if *rhs != "" {
		var ks []int
		for _, s := range strings.Split(*rhs, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || k <= 0 {
				fmt.Fprintf(os.Stderr, "spmvbench: bad rhs count %q\n", s)
				os.Exit(2)
			}
			ks = append(ks, k)
		}
		threads := cfg.Threads[len(cfg.Threads)-1]
		note("# spmvbench: multi-RHS sweep, scale=%.3g, %d iterations, %d threads\n\n",
			cfg.Scale, cfg.WarmIters, threads)
		points, err := bench.RHSSweep(cfg, *rhsMatrix, threads, ks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
		if err := bench.PrintRHS(os.Stdout, points, *rhsMatrix, threads); err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
		return
	}

	need := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		need[e] = true
	}
	if need["all"] {
		for _, e := range []string{"table2", "table3", "table4", "fig7", "fig8"} {
			need[e] = true
		}
	}

	note("# spmvbench: native timing, scale=%.3g, %d iterations\n", cfg.Scale, cfg.WarmIters)
	note("# note: the 2(2xL2) placement row requires cache control and exists only in spmvsim\n\n")
	runs, err := bench.Collect(cfg)
	stopTrace()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvbench:", err)
		os.Exit(1)
	}
	writeTimeline()

	emit := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
	}
	if archMode {
		file := bench.ArchiveRecords(cfg, runs, archiveMeta())
		if *archivePath != "" {
			path := *archivePath
			if st, err := os.Stat(path); err == nil && st.IsDir() {
				path = archive.DefaultPath(path, file.Host)
			}
			emit(archive.Write(path, file))
			note("# archive: wrote %s (%d records)\n", path, len(file.Records))
		}
		if *comparePath != "" {
			old, err := archive.Load(*comparePath)
			emit(err)
			results, err := archive.Compare(old.Records, file.Records,
				archive.Options{Slowdown: *slowdown})
			emit(err)
			emit(archive.Print(os.Stdout, results))
			if regs := archive.Regressions(results); len(regs) > 0 {
				fmt.Fprintf(os.Stderr, "spmvbench: %d significant regression(s) beyond %.0f%%\n",
					len(regs), *slowdown*100)
				os.Exit(1)
			}
			note("# compare: no significant regressions vs %s\n", *comparePath)
		}
		return
	}
	if *metrics {
		emit(bench.WriteMetricsJSON(os.Stdout, bench.BuildMetricsReport(cfg, runs)))
		return
	}
	if *roofFlag {
		emit(bench.BuildRooflineTable(runs, cfg.Formats, cfg.Threads, cfg.Roofline).Print(os.Stdout))
		return
	}
	if need["table2"] {
		emit(bench.BuildTable2(runs, cfg.Threads).Print(os.Stdout))
		fmt.Println()
	}
	if need["table3"] {
		emit(bench.BuildRelTable(runs, "csr-du", cfg.Threads, 0).Print(os.Stdout, "Table III"))
		fmt.Println()
	}
	if need["table4"] {
		emit(bench.BuildRelTable(runs, "csr-vi", cfg.Threads, 5).Print(os.Stdout, "Table IV"))
		fmt.Println()
	}
	if need["fig7"] {
		emit(bench.PrintFig(os.Stdout, "Fig 7: CSR-DU per-matrix",
			bench.BuildFig(runs, "csr-du", cfg.Threads, 0), cfg.Threads))
		fmt.Println()
	}
	if need["fig8"] {
		emit(bench.PrintFig(os.Stdout, "Fig 8: CSR-VI per-matrix (ttu > 5)",
			bench.BuildFig(runs, "csr-vi", cfg.Threads, 5), cfg.Threads))
		fmt.Println()
	}
}
