// Command spmvbench runs the paper's experiments with wall-clock
// timing on the host machine: real goroutines, real caches. Shapes
// depend on the host's memory system; for the deterministic
// reproduction of the paper's platform use cmd/spmvsim.
//
// Usage:
//
//	spmvbench [-experiment all|table2|table3|table4|fig7|fig8]
//	          [-scale 0.25] [-iters 10] [-threads 1,2,4,8] [-v]
//	          [-metrics] [-debug localhost:6060]
//	          [-rhs 1,2,4,8] [-rhsmatrix banded-l-q128]
//
// With -rhs the tables are replaced by the multi-RHS sweep: batched
// SpMV (RunBatch) over row-major n×k panels at each listed k, per
// format, reporting seconds and modeled bytes per result vector. The
// matrix stream is read once per multiplication regardless of k, so
// bytes-per-vector falls towards the dense-vector floor as k grows.
//
// With -metrics the tables are replaced by a single JSON document on
// stdout: per matrix, per format and per thread count the measured
// seconds per iteration, effective bandwidth (GB/s), static and
// measured load imbalance, compressed size ratio and the last run's
// per-chunk telemetry. Progress notes move to stderr so stdout stays
// machine-parseable.
//
// With -debug ADDR a background HTTP server exposes Go's standard
// debug endpoints while the benchmark runs: /debug/vars (expvar,
// including the live "spmv" telemetry snapshot) and /debug/pprof
// (CPU/heap profiles; worker goroutines carry spmv_partition and
// spmv_worker pprof labels).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"spmv/internal/bench"
	"spmv/internal/obs"
)

func main() {
	experiment := flag.String("experiment", "all", "table2|table3|table4|fig7|fig8|all")
	scale := flag.Float64("scale", 0.25, "matrix size multiplier (1.0 = paper scale)")
	iters := flag.Int("iters", 10, "timed iterations per configuration")
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	verbose := flag.Bool("v", false, "print per-matrix progress")
	verify := flag.Bool("verify", false, "structurally verify every built format before timing it")
	metrics := flag.Bool("metrics", false, "emit a JSON metrics report on stdout instead of tables")
	debugAddr := flag.String("debug", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	rhs := flag.String("rhs", "", "comma-separated RHS panel widths: run the batched multi-vector sweep instead of the tables")
	rhsMatrix := flag.String("rhsmatrix", "banded-l-q128", "suite matrix for the -rhs sweep")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Native = true
	cfg.Scale = *scale
	cfg.WarmIters = *iters
	cfg.Verify = *verify
	cfg.Metrics = *metrics

	// With -metrics, stdout carries exactly one JSON document; all
	// human-facing notes go to stderr.
	notes := os.Stdout
	if *metrics {
		notes = os.Stderr
	}
	note := func(format string, args ...any) {
		if _, err := fmt.Fprintf(notes, format, args...); err != nil {
			os.Exit(1)
		}
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	cfg.Threads = nil
	for _, t := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(t))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "spmvbench: bad thread count %q\n", t)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, n)
	}

	if *debugAddr != "" {
		rec := obs.NewRecorder()
		cfg.Recorder = rec
		if err := obs.PublishExpvar("spmv", rec); err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
		go func() {
			// DefaultServeMux already carries /debug/vars (expvar) and
			// /debug/pprof (net/http/pprof) via their package inits.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "spmvbench: debug server:", err)
			}
		}()
		note("# debug: http://%s/debug/vars and /debug/pprof\n", *debugAddr)
	}

	if *rhs != "" {
		var ks []int
		for _, s := range strings.Split(*rhs, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || k <= 0 {
				fmt.Fprintf(os.Stderr, "spmvbench: bad rhs count %q\n", s)
				os.Exit(2)
			}
			ks = append(ks, k)
		}
		threads := cfg.Threads[len(cfg.Threads)-1]
		note("# spmvbench: multi-RHS sweep, scale=%.3g, %d iterations, %d threads\n\n",
			cfg.Scale, cfg.WarmIters, threads)
		points, err := bench.RHSSweep(cfg, *rhsMatrix, threads, ks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
		if err := bench.PrintRHS(os.Stdout, points, *rhsMatrix, threads); err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
		return
	}

	need := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		need[e] = true
	}
	if need["all"] {
		for _, e := range []string{"table2", "table3", "table4", "fig7", "fig8"} {
			need[e] = true
		}
	}

	note("# spmvbench: native timing, scale=%.3g, %d iterations\n", cfg.Scale, cfg.WarmIters)
	note("# note: the 2(2xL2) placement row requires cache control and exists only in spmvsim\n\n")
	runs, err := bench.Collect(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvbench:", err)
		os.Exit(1)
	}

	emit := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
	}
	if *metrics {
		emit(bench.WriteMetricsJSON(os.Stdout, bench.BuildMetricsReport(cfg, runs)))
		return
	}
	if need["table2"] {
		emit(bench.BuildTable2(runs, cfg.Threads).Print(os.Stdout))
		fmt.Println()
	}
	if need["table3"] {
		emit(bench.BuildRelTable(runs, "csr-du", cfg.Threads, 0).Print(os.Stdout, "Table III"))
		fmt.Println()
	}
	if need["table4"] {
		emit(bench.BuildRelTable(runs, "csr-vi", cfg.Threads, 5).Print(os.Stdout, "Table IV"))
		fmt.Println()
	}
	if need["fig7"] {
		emit(bench.PrintFig(os.Stdout, "Fig 7: CSR-DU per-matrix",
			bench.BuildFig(runs, "csr-du", cfg.Threads, 0), cfg.Threads))
		fmt.Println()
	}
	if need["fig8"] {
		emit(bench.PrintFig(os.Stdout, "Fig 8: CSR-VI per-matrix (ttu > 5)",
			bench.BuildFig(runs, "csr-vi", cfg.Threads, 5), cfg.Threads))
		fmt.Println()
	}
}
