// Command spmvbench runs the paper's experiments with wall-clock
// timing on the host machine: real goroutines, real caches. Shapes
// depend on the host's memory system; for the deterministic
// reproduction of the paper's platform use cmd/spmvsim.
//
// Usage:
//
//	spmvbench [-experiment all|table2|table3|table4|fig7|fig8]
//	          [-scale 0.25] [-iters 10] [-threads 1,2,4,8] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spmv/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "table2|table3|table4|fig7|fig8|all")
	scale := flag.Float64("scale", 0.25, "matrix size multiplier (1.0 = paper scale)")
	iters := flag.Int("iters", 10, "timed iterations per configuration")
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	verbose := flag.Bool("v", false, "print per-matrix progress")
	verify := flag.Bool("verify", false, "structurally verify every built format before timing it")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Native = true
	cfg.Scale = *scale
	cfg.WarmIters = *iters
	cfg.Verify = *verify
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	cfg.Threads = nil
	for _, t := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(t))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "spmvbench: bad thread count %q\n", t)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, n)
	}

	need := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		need[e] = true
	}
	if need["all"] {
		for _, e := range []string{"table2", "table3", "table4", "fig7", "fig8"} {
			need[e] = true
		}
	}

	fmt.Printf("# spmvbench: native timing, scale=%.3g, %d iterations\n", cfg.Scale, cfg.WarmIters)
	fmt.Printf("# note: the 2(2xL2) placement row requires cache control and exists only in spmvsim\n\n")
	runs, err := bench.Collect(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvbench:", err)
		os.Exit(1)
	}

	emit := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvbench:", err)
			os.Exit(1)
		}
	}
	if need["table2"] {
		emit(bench.BuildTable2(runs, cfg.Threads).Print(os.Stdout))
		fmt.Println()
	}
	if need["table3"] {
		emit(bench.BuildRelTable(runs, "csr-du", cfg.Threads, 0).Print(os.Stdout, "Table III"))
		fmt.Println()
	}
	if need["table4"] {
		emit(bench.BuildRelTable(runs, "csr-vi", cfg.Threads, 5).Print(os.Stdout, "Table IV"))
		fmt.Println()
	}
	if need["fig7"] {
		emit(bench.PrintFig(os.Stdout, "Fig 7: CSR-DU per-matrix",
			bench.BuildFig(runs, "csr-du", cfg.Threads, 0), cfg.Threads))
		fmt.Println()
	}
	if need["fig8"] {
		emit(bench.PrintFig(os.Stdout, "Fig 8: CSR-VI per-matrix (ttu > 5)",
			bench.BuildFig(runs, "csr-vi", cfg.Threads, 5), cfg.Threads))
		fmt.Println()
	}
}
