// Command spmvsolve solves A x = b for a Matrix Market matrix: it
// analyzes the matrix, picks (or takes) a storage format, optionally
// builds an ILU(0) preconditioner, runs the requested Krylov method on
// the requested number of threads, and reports convergence and timing.
//
// Usage:
//
//	spmvsolve -method cg -format auto -threads 4 matrix.mtx
//	spmvsolve -method gmres -ilu matrix.mtx        # nonsymmetric + ILU(0)
//
// The right-hand side is all ones.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"spmv"
)

func main() {
	method := flag.String("method", "cg", "cg|pcg|gmres|bicgstab")
	format := flag.String("format", "auto", "storage format or 'auto' (advisor)")
	threads := flag.Int("threads", 1, "worker goroutines for SpMV")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	maxIter := flag.Int("maxiter", 100000, "matrix-vector product budget")
	restart := flag.Int("restart", 30, "GMRES restart length")
	ilu := flag.Bool("ilu", false, "precondition with ILU(0) (gmres/bicgstab via right preconditioning, cg via CGPrec)")
	stats := flag.Bool("stats", false, "report SpMV runtime telemetry after the solve (threads > 1)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: spmvsolve [flags] matrix.mtx")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *method, *format, *threads, *tol, *maxIter, *restart, *ilu, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "spmvsolve:", err)
		os.Exit(1)
	}
}

func run(path, method, format string, threads int, tol float64, maxIter, restart int, useILU, stats bool) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	c, err := spmv.ReadMatrixMarket(f)
	if err != nil {
		return err
	}
	if c.Rows() != c.Cols() {
		return fmt.Errorf("matrix must be square, got %dx%d", c.Rows(), c.Cols())
	}
	n := c.Rows()
	fmt.Printf("matrix: %dx%d, %d nnz, ws %.1f MB\n", n, n, c.Len(),
		float64(spmv.WorkingSet(c))/(1<<20))

	if format == "auto" {
		recs := spmv.Analyze(c).Recommend()
		format = recs[0].Format
		fmt.Printf("advisor: %s (%s)\n", format, recs[0].Reason)
	}
	m, err := spmv.BuildFormat(format, c)
	if err != nil {
		return fmt.Errorf("building %s: %w", format, err)
	}
	// O(nnz) structural check — negligible next to the solve, and a
	// corrupt stream aborts here instead of mid-iteration.
	if err := spmv.Verify(m); err != nil {
		return fmt.Errorf("verifying %s: %w", format, err)
	}
	fmt.Printf("format: %s, %.1f%% of CSR\n", m.Name(), 100*spmv.CompressionRatio(m))

	var op spmv.Operator
	var rec *spmv.Recorder
	if threads > 1 {
		e, err := spmv.NewExecutor(m, threads)
		if err != nil {
			return err
		}
		defer e.Close()
		if stats {
			rec = spmv.NewRecorder()
			e.SetCollector(rec)
		}
		op = spmv.NewParallelOperator(e, n)
		fmt.Printf("threads: %d\n", e.Threads())
	} else {
		op, err = spmv.NewOperator(m)
		if err != nil {
			return err
		}
		if stats {
			fmt.Println("stats: telemetry needs the parallel executor; run with -threads > 1")
		}
	}

	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)

	var pre spmv.Preconditioner
	if useILU {
		start := time.Now()
		p, err := spmv.NewILU0(c)
		if err != nil {
			return fmt.Errorf("ILU(0): %w", err)
		}
		pre = p
		fmt.Printf("ILU(0): factored in %v (%.1f MB)\n",
			time.Since(start).Round(time.Millisecond), float64(p.FactorBytes())/(1<<20))
	}

	start := time.Now()
	var res spmv.SolveResult
	switch method {
	case "cg":
		if pre != nil {
			res, err = spmv.CGPrec(op, pre, b, x, tol, maxIter)
		} else {
			res, err = spmv.CG(op, b, x, tol, maxIter)
		}
	case "pcg":
		invD, derr := spmv.JacobiInvDiag(c)
		if derr != nil {
			return derr
		}
		res, err = spmv.PCG(op, invD, b, x, tol, maxIter)
	case "gmres":
		if pre != nil {
			pop, finish := spmv.RightPreconditioned(op, pre)
			u := make([]float64, n)
			res, err = spmv.GMRES(pop, b, u, restart, tol, maxIter)
			x = finish(u)
		} else {
			res, err = spmv.GMRES(op, b, x, restart, tol, maxIter)
		}
	case "bicgstab":
		if pre != nil {
			pop, finish := spmv.RightPreconditioned(op, pre)
			u := make([]float64, n)
			res, err = spmv.BiCGSTAB(pop, b, u, tol, maxIter)
			x = finish(u)
		} else {
			res, err = spmv.BiCGSTAB(op, b, x, tol, maxIter)
		}
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	fmt.Printf("%s: converged=%v matvecs=%d residual=%.3e time=%v\n",
		method, res.Converged, res.Iterations, res.Residual, elapsed.Round(time.Millisecond))
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	fmt.Printf("||x||_2 = %.6g\n", math.Sqrt(norm))
	if rec != nil {
		printStats(rec, m)
	}
	if !res.Converged {
		return fmt.Errorf("did not converge within %d matrix-vector products", maxIter)
	}
	return nil
}

// printStats reports the recorder's view of the solve's SpMV calls:
// how many ran, how fast, what memory bandwidth that implies, and how
// evenly the work spread across workers.
func printStats(rec *spmv.Recorder, m spmv.Format) {
	snap := rec.Snapshot()
	if snap.Runs == 0 {
		fmt.Println("spmv stats: no runs recorded")
		return
	}
	secs := rec.SecsPerRun()
	gbps := 0.0
	if secs > 0 {
		gbps = float64(spmv.BytesPerSpMV(m)) / secs / 1e9
	}
	fmt.Printf("spmv stats: %d runs, %.3g ms/run, %.2f GB/s effective, imbalance mean=%.2f max=%.2f (%d workers, %s partition)\n",
		snap.Runs, secs*1e3, gbps,
		snap.MeanTimeImbalance, snap.MaxTimeImbalance,
		snap.Last.Threads(), snap.Last.Partition)
}
