// Command spmvd serves SpMV over HTTP: clients upload matrices
// (Matrix Market text or the matfile binary container), the daemon
// verifies and builds them into the paper's compressed formats once,
// and concurrent y = A·x requests against the cached build are
// admission-controlled, deadline-bounded and coalesced into SpMM
// panels (PR 4: a width-8 panel reads the matrix stream once for
// eight results). See DESIGN.md §12 for the pipeline.
//
// Usage:
//
//	spmvd [-addr :8090] [-mem-budget 256] [-max-upload 64]
//	      [-max-batch 8] [-queue 64] [-per-client 16]
//	      [-deadline 10s] [-drain-timeout 15s]
//	      [-threads 0] [-format csr-du] [-quiet] [-log]
//	      [-roofdir benchdata] [-selfcheck]
//
// Endpoints:
//
//	POST /matrices[?format=csr-du]   upload, returns {"id": ...}
//	GET  /matrices                   list admitted matrices
//	GET  /matrices/{id}              one matrix's metadata
//	DELETE /matrices/{id}            evict
//	POST /matrices/{id}/multiply     {"x": [...]} -> {"y": [...]}
//	GET  /metrics                    live counters + per-matrix stats
//	GET  /metrics.prom               Prometheus text-format exposition
//	GET  /healthz                    liveness (503 while draining)
//	GET  /debug/pprof/               Go profiling endpoints
//
// With -log every failed request emits one structured JSON record on
// stderr (log/slog: request id, matrix, client, HTTP status, error,
// span timings) instead of plain printf lines — the machine-parseable
// audit stream. -quiet wins over -log.
//
// The daemon loads the host's measured bandwidth model from
// -roofdir/ROOF_<host>.json when present (see spmvbench -roofprobe),
// falling back to the analytic Clovertown peak; the ceilings are
// served as spmv_roofline_ceiling_gbps gauges on /metrics.prom so
// dashboards can plot served bandwidth against the memory wall.
//
// SIGTERM or SIGINT triggers a graceful drain: the listener stops
// accepting, in-flight and queued requests finish (bounded by
// -drain-timeout), then the executor pools shut down.
//
// With -selfcheck the daemon starts on a loopback port, runs an
// end-to-end smoke against itself (upload, query, multiply checked
// against a reference product, corrupt upload rejected, overload
// shedding with 429, SIGTERM drain), and exits 0 on success — the
// verify.sh server gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spmv/internal/memsim"
	"spmv/internal/roofline"
	"spmv/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8090", "listen address")
		memBudget    = flag.Int64("mem-budget", 256, "matrix cache budget in MiB (LRU evicts beyond it)")
		maxUpload    = flag.Int64("max-upload", 64, "largest accepted upload in MiB")
		maxBatch     = flag.Int("max-batch", 8, "widest coalesced SpMM panel")
		queue        = flag.Int("queue", 64, "admission queue depth per matrix (beyond it: 429)")
		perClient    = flag.Int("per-client", 16, "concurrent requests allowed per client (beyond it: 429)")
		deadline     = flag.Duration("deadline", 10*time.Second, "default and maximum per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget on SIGTERM")
		threads      = flag.Int("threads", 0, "executor threads per matrix (0 = GOMAXPROCS)")
		format       = flag.String("format", "csr-du", "format built for uploads that do not specify one")
		quiet        = flag.Bool("quiet", false, "suppress per-event logging")
		logJSON      = flag.Bool("log", false, "emit structured JSON log records (log/slog) on stderr; failed requests carry id/matrix/status/error/span timings")
		roofDir      = flag.String("roofdir", "benchdata", "directory holding ROOF_<host>.json bandwidth probe archives (spmvbench -roofprobe)")
		selfcheck    = flag.Bool("selfcheck", false, "serve on a loopback port, smoke-test against self, exit")
	)
	flag.Parse()

	cfg := server.Config{
		MemoryBudget:    *memBudget << 20,
		MaxUploadBytes:  *maxUpload << 20,
		MaxBatch:        *maxBatch,
		QueueDepth:      *queue,
		MaxPerClient:    *perClient,
		DefaultDeadline: *deadline,
		Threads:         *threads,
		DefaultFormat:   *format,
	}
	switch {
	case *quiet:
		// No sinks: the server drops both printf lines and structured
		// records.
	case *logJSON:
		// Structured-only: operational printf lines flow through the
		// logger's Warn level, failed requests get typed attrs.
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		cfg.Logf = func(f string, args ...any) {
			fmt.Fprintf(os.Stderr, "spmvd: "+f+"\n", args...)
		}
	}
	if m, err := roofline.Load(*roofDir); err == nil {
		cfg.Roofline = m
	} else {
		// No probe archive for this host: the analytic machine peak keeps
		// the /metrics.prom ceiling gauges present (source="analytic").
		cfg.Roofline = roofline.Analytic(memsim.Clovertown())
	}

	if *selfcheck {
		if err := runSelfcheck(cfg, *drainTimeout); err != nil {
			fmt.Fprintf(os.Stderr, "spmvd: selfcheck FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("spmvd: selfcheck ok")
		return
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmvd: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "spmvd: serving on %s (budget %d MiB, format %s)\n",
		lis.Addr(), *memBudget, *format)
	if err := serve(cfg, lis, *drainTimeout, nil); err != nil {
		fmt.Fprintf(os.Stderr, "spmvd: %v\n", err)
		os.Exit(1)
	}
}

// serve runs the daemon on lis until SIGTERM/SIGINT, then drains
// gracefully: the listener closes, in-flight handlers finish, queued
// work executes, executor pools shut down — all bounded by
// drainTimeout. If ready is non-nil it receives the app handle once
// the listener is accepting (the selfcheck hook).
func serve(cfg server.Config, lis net.Listener, drainTimeout time.Duration, ready chan<- *server.Server) error {
	app := server.New(cfg)
	httpSrv := &http.Server{
		Handler:           app,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(lis) }()
	if ready != nil {
		ready <- app
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		// Listener failure before any signal: nothing to drain.
		app.Close()
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigc:
		app.Logf("received %v, draining (budget %s)", sig, drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop accepting and wait for in-flight handlers, then drain the
	// coalescer backlogs and shut the executor pools down.
	shutErr := httpSrv.Shutdown(ctx)
	drainErr := app.Drain(ctx)
	<-errc // Serve has returned http.ErrServerClosed
	if shutErr != nil {
		return fmt.Errorf("shutdown: %w", shutErr)
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	app.Logf("drained cleanly")
	return nil
}
