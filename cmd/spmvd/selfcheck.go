package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"spmv/internal/mmio"
	"spmv/internal/server"
	"spmv/internal/server/faulttest"
)

// runSelfcheck boots the daemon on a loopback port and runs the
// verify.sh server smoke against it, end to end through real TCP:
//
//  1. /healthz answers,
//  2. a Matrix Market upload is admitted and queryable,
//  3. multiply returns the reference product,
//  4. a corrupt upload is rejected with 400,
//  5. overload sheds with 429 while admitted requests still finish,
//  6. /metrics reports the traffic,
//  7. SIGTERM (sent to ourselves — the real signal path) drains
//     cleanly and the listener goes away.
//
// The overload step is deterministic, not load-dependent: a fault
// hook gates execution shut, so the admission queue (capacity 2 here)
// must overflow once more than queue+batch requests are in flight.
func runSelfcheck(cfg server.Config, drainTimeout time.Duration) error {
	cfg.QueueDepth = 2
	cfg.MaxBatch = 2
	cfg.MaxPerClient = 64
	cfg.DefaultDeadline = 5 * time.Second
	gate := make(chan struct{})
	var gated atomic.Bool
	cfg.Hooks = &server.Hooks{BeforeExecute: func(string, int) error {
		if gated.Load() {
			<-gate
		}
		return nil
	}}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	ready := make(chan *server.Server, 1)
	served := make(chan error, 1)
	go func() { served <- serve(cfg, lis, drainTimeout, ready) }()
	<-ready
	cl := smokeClient{
		base: "http://" + lis.Addr().String(),
		hc:   &http.Client{Timeout: 10 * time.Second},
	}

	// 1. Liveness.
	if code, _, err := cl.get("/healthz"); err != nil || code != 200 {
		return fmt.Errorf("healthz: code %d, err %v", code, err)
	}

	// 2. Upload and query back.
	body := faulttest.ValidMMIO(7, 32)
	code, raw, err := cl.post("/matrices?format=csr-du", body)
	if err != nil || code != http.StatusCreated {
		return fmt.Errorf("upload: code %d, err %v: %s", code, err, raw)
	}
	var up server.UploadResponse
	if err := json.Unmarshal(raw, &up); err != nil {
		return fmt.Errorf("upload response: %w", err)
	}
	if code, _, err := cl.get("/matrices/" + up.ID); err != nil || code != 200 {
		return fmt.Errorf("query %s: code %d, err %v", up.ID, code, err)
	}

	// 3. Multiply against the reference product.
	x := make([]float64, up.Cols)
	for i := range x {
		x[i] = 1 + float64(i%5)
	}
	y, err := cl.multiply(up.ID, x)
	if err != nil {
		return fmt.Errorf("multiply: %w", err)
	}
	coo, err := mmio.Read(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("reference parse: %w", err)
	}
	ref := make([]float64, up.Rows)
	coo.SpMV(ref, x)
	for i := range ref {
		if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
			return fmt.Errorf("multiply: y[%d] = %g, reference %g", i, y[i], ref[i])
		}
	}

	// 4. Corrupt upload rejected.
	bad := append([]byte(nil), body...)
	bad[10] ^= 0x40
	if code, raw, err := cl.post("/matrices", bad); err != nil || code != http.StatusBadRequest {
		return fmt.Errorf("corrupt upload: code %d, err %v: %s", code, err, raw)
	}

	// 5. Deterministic overload: execution is gated shut, so with the
	// queue (2) and one in-flight batch (≤2) saturated, 10 concurrent
	// requests must shed at least one 429. Gated requests released
	// afterwards may finish 200 or time out 504; nothing else.
	gated.Store(true)
	const flood = 10
	codes := make(chan int, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.multiply(up.ID, x); err != nil {
				var se statusError
				if errors.As(err, &se) {
					codes <- se.code
					return
				}
				codes <- -1
				return
			}
			codes <- http.StatusOK
		}()
	}
	sawShed := false
	deadline := time.After(5 * time.Second)
wait:
	for !sawShed {
		select {
		case c := <-codes:
			if c == http.StatusTooManyRequests {
				sawShed = true
			}
		case <-deadline:
			break wait
		}
	}
	close(gate)
	gated.Store(false)
	wg.Wait()
	if !sawShed {
		return fmt.Errorf("overload: no 429 among %d gated concurrent requests", flood)
	}

	// 6. Metrics reflect the traffic.
	code, raw, err = cl.get("/metrics")
	if err != nil || code != 200 {
		return fmt.Errorf("metrics: code %d, err %v", code, err)
	}
	var snap server.MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("metrics decode: %w", err)
	}
	if snap.RequestsTotal == 0 || snap.Shed == 0 || snap.UploadsRejected == 0 {
		return fmt.Errorf("metrics: requests=%d shed=%d rejected=%d, all must be nonzero",
			snap.RequestsTotal, snap.Shed, snap.UploadsRejected)
	}
	if _, ok := snap.Matrices[up.ID]; !ok {
		return fmt.Errorf("metrics: matrix %s missing from snapshot", up.ID)
	}
	if mm := snap.Matrices[up.ID]; len(mm.Spans) == 0 {
		return fmt.Errorf("metrics: matrix %s has no lifecycle span histograms", up.ID)
	}

	// 6b. The Prometheus exposition serves the same traffic: the right
	// content type, the request counter, and a span histogram series for
	// the uploaded matrix (the full format checker runs in the server
	// package's tests; this is the live-daemon smoke).
	code, raw, ct, err := cl.getWithType("/metrics.prom")
	if err != nil || code != 200 {
		return fmt.Errorf("metrics.prom: code %d, err %v", code, err)
	}
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("metrics.prom: content type %q", ct)
	}
	prom := string(raw)
	for _, want := range []string{
		"# TYPE spmv_requests_total counter",
		"spmv_request_span_seconds_bucket{matrix=\"" + up.ID + "\",span=\"total\",le=\"+Inf\"}",
		"spmv_goroutines",
	} {
		if !strings.Contains(prom, want) {
			return fmt.Errorf("metrics.prom: missing %q", want)
		}
	}

	// 7. SIGTERM to ourselves exercises the real drain path.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fmt.Errorf("sigterm: %w", err)
	}
	select {
	case err := <-served:
		if err != nil {
			return fmt.Errorf("drain after SIGTERM: %w", err)
		}
	case <-time.After(drainTimeout + 5*time.Second):
		return fmt.Errorf("drain after SIGTERM: timed out")
	}
	if _, _, err := cl.get("/healthz"); err == nil {
		return fmt.Errorf("listener still answering after drain")
	}
	return nil
}

// smokeClient is a minimal HTTP helper over the loopback daemon.
type smokeClient struct {
	base string
	hc   *http.Client
}

// statusError carries a non-200 multiply status up to the overload
// counter.
type statusError struct{ code int }

func (e statusError) Error() string { return fmt.Sprintf("status %d", e.code) }

func (c smokeClient) do(method, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return resp.StatusCode, raw, err
}

func (c smokeClient) get(path string) (int, []byte, error) {
	return c.do(http.MethodGet, path, nil)
}

// getWithType is get plus the response Content-Type, for endpoints
// whose media type is part of the contract (/metrics.prom).
func (c smokeClient) getWithType(path string) (int, []byte, string, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, nil, "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return resp.StatusCode, raw, resp.Header.Get("Content-Type"), err
}

func (c smokeClient) post(path string, body []byte) (int, []byte, error) {
	return c.do(http.MethodPost, path, body)
}

// multiply posts x against id and returns y, or a statusError for any
// non-200 answer.
func (c smokeClient) multiply(id string, x []float64) ([]float64, error) {
	mb, err := json.Marshal(server.MultiplyRequest{X: x})
	if err != nil {
		return nil, err
	}
	code, raw, err := c.post("/matrices/"+id+"/multiply", mb)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, statusError{code: code}
	}
	var resp server.MultiplyResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	return resp.Y, nil
}
