// Command mtxgen writes synthetic sparse matrices (the generators that
// stand in for the paper's UF-collection set) as Matrix Market files.
//
// Usage:
//
//	mtxgen -kind stencil2d -n 512 -o poisson.mtx
//	mtxgen -kind banded -n 100000 -perrow 8 -band 50 -unique 64 -o m.mtx
//
// Kinds: stencil2d, stencil2d9, stencil3d, banded, random, powerlaw,
// blockdiag, femlike.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spmv"
	"spmv/internal/core"
	"spmv/internal/matgen"
)

func main() {
	kind := flag.String("kind", "stencil2d", "generator: stencil2d|stencil2d9|stencil3d|banded|random|powerlaw|blockdiag|femlike")
	n := flag.Int("n", 1000, "linear size (grid side for stencils, rows otherwise)")
	perRow := flag.Int("perrow", 8, "non-zeros per row (banded/random/femlike)")
	band := flag.Int("band", 50, "half bandwidth (banded)")
	cols := flag.Int("cols", 0, "columns (random; default n)")
	blockSize := flag.Int("bs", 8, "block size (blockdiag)")
	alpha := flag.Float64("alpha", 0.8, "degree exponent (powerlaw)")
	unique := flag.Int("unique", 0, "unique value pool (0 = all distinct)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	vals := matgen.Values{Unique: *unique}
	var c *core.COO
	switch *kind {
	case "stencil2d":
		c = matgen.Stencil2D(*n)
	case "stencil2d9":
		c = matgen.Stencil2D9(*n)
	case "stencil3d":
		c = matgen.Stencil3D(*n)
	case "banded":
		c = matgen.Banded(rng, *n, *band, *perRow, vals)
	case "random":
		nc := *cols
		if nc == 0 {
			nc = *n
		}
		c = matgen.RandomUniform(rng, *n, nc, *perRow, vals)
	case "powerlaw":
		c = matgen.PowerLaw(rng, *n, float64(*perRow), *alpha, vals)
	case "blockdiag":
		c = matgen.BlockDiag(rng, *n, *blockSize, vals)
	case "femlike":
		c = matgen.FEMLike(rng, *n, *perRow, vals)
	default:
		fmt.Fprintf(os.Stderr, "mtxgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtxgen:", err)
			os.Exit(1)
		}
		w = f
	}
	if err := spmv.WriteMatrixMarket(w, c); err != nil {
		fmt.Fprintln(os.Stderr, "mtxgen:", err)
		os.Exit(1)
	}
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mtxgen:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "mtxgen: %s %dx%d nnz=%d ws=%.2fMB ttu=%.1f\n",
		*kind, c.Rows(), c.Cols(), c.Len(), float64(spmv.WorkingSet(c))/(1<<20), matgen.TTU(c))
}
