// Command spmvsim reproduces the paper's evaluation (Tables II-IV,
// Figs 7-8) on the simulated 2×Clovertown platform. It is the
// deterministic counterpart of cmd/spmvbench: results do not depend on
// the host machine.
//
// Usage:
//
//	spmvsim [-experiment all|table2|table3|table4|fig7|fig8]
//	        [-scale 1.0] [-warm 2] [-v]
//
// At -scale 1.0 the matrix suite spans the paper's working-set range
// (3-60MB) and a full run takes a few minutes; smaller scales trade
// fidelity of the M_S/M_L split for speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spmv/internal/bench"
	"spmv/internal/memsim"
)

func main() {
	experiment := flag.String("experiment", "all", "table2|table3|table4|fig7|fig8|sweep|freq|machines|all")
	scale := flag.Float64("scale", 1.0, "matrix size multiplier (1.0 = paper scale)")
	warm := flag.Int("warm", 2, "steady-state iterations measured per configuration")
	formatList := flag.String("formats", "csr-du,csr-vi", "comma-separated compressed formats to measure")
	verbose := flag.Bool("v", false, "print per-matrix progress")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.WarmIters = *warm
	cfg.Formats = nil
	for _, f := range strings.Split(*formatList, ",") {
		if f = strings.TrimSpace(f); f != "" {
			cfg.Formats = append(cfg.Formats, f)
		}
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	need := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		need[e] = true
	}
	if need["all"] {
		for _, e := range []string{"table2", "table3", "table4", "fig7", "fig8", "sweep", "freq"} {
			need[e] = true
		}
	}

	emit := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvsim:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("# spmvsim: simulated %s, scale=%.3g, %d warm iterations\n\n",
		cfg.Machine.Name, cfg.Scale, cfg.WarmIters)

	if need["sweep"] {
		// Bandwidth-sweep ablation: independent of the per-table runs.
		factors := []float64{0.25, 0.5, 1, 2, 4, 8}
		points, err := bench.BandwidthSweep(cfg, "banded-l-q128", 8, factors)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvsim:", err)
			os.Exit(1)
		}
		emit(bench.PrintSweep(os.Stdout, points, cfg.Formats, "banded-l-q128", 8))
		fmt.Println()
		delete(need, "sweep")
	}
	if need["machines"] {
		machines := []memsim.Machine{memsim.Clovertown(), memsim.Opteron8()}
		points, err := bench.MachineStudy(cfg, "banded-l-q128", machines, cfg.Threads)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvsim:", err)
			os.Exit(1)
		}
		emit(bench.PrintMachines(os.Stdout, points, cfg.Formats, "banded-l-q128", cfg.Threads))
		fmt.Println()
		delete(need, "machines")
	}
	if need["freq"] {
		// §VI-D frequency sensitivity of the serial speedups.
		freqs := []float64{1, 2, 3, 4}
		points, err := bench.FrequencyStudy(cfg, "banded-l-q128", freqs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spmvsim:", err)
			os.Exit(1)
		}
		emit(bench.PrintFreq(os.Stdout, points, cfg.Formats, "banded-l-q128"))
		fmt.Println()
		delete(need, "freq")
	}
	delete(need, "all")
	if len(need) == 0 {
		return
	}

	runs, err := bench.Collect(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmvsim:", err)
		os.Exit(1)
	}

	if need["table2"] {
		emit(bench.BuildTable2(runs, cfg.Threads).Print(os.Stdout))
		fmt.Println()
	}
	valueFormats := map[string]bool{"csr-vi": true, "csr-du-vi": true}
	if need["table3"] {
		// Index-side formats compare on the full set.
		for _, f := range cfg.Formats {
			if valueFormats[f] {
				continue
			}
			emit(bench.BuildRelTable(runs, f, cfg.Threads, 0).Print(os.Stdout, "Table III ("+f+")"))
			fmt.Println()
		}
	}
	if need["table4"] {
		// Value-side formats compare on the ttu>5 subset (§VI-E).
		for _, f := range cfg.Formats {
			if !valueFormats[f] {
				continue
			}
			emit(bench.BuildRelTable(runs, f, cfg.Threads, 5).Print(os.Stdout, "Table IV ("+f+")"))
			fmt.Println()
		}
	}
	if need["fig7"] {
		emit(bench.PrintFig(os.Stdout, "Fig 7: CSR-DU per-matrix",
			bench.BuildFig(runs, "csr-du", cfg.Threads, 0), cfg.Threads))
		fmt.Println()
	}
	if need["fig8"] {
		emit(bench.PrintFig(os.Stdout, "Fig 8: CSR-VI per-matrix (ttu > 5)",
			bench.BuildFig(runs, "csr-vi", cfg.Threads, 5), cfg.Threads))
		fmt.Println()
	}
}
