// Command mtxinfo analyzes Matrix Market files through the lens of the
// paper: working-set size and class (M_S/M_L), total-to-unique values
// ratio and CSR-VI applicability, per-format sizes and compression
// ratios, and the CSR-DU unit mix.
//
// Usage:
//
//	mtxinfo [-verify] [-profile FORMAT] [-features]
//	        [-roofline FORMAT] [-roofdir benchdata]
//	        file.mtx [file2.mtx ...]
//
// With -roofline FORMAT each matrix gets a bandwidth-floor prediction
// for the named format against the host's roofline model (the
// benchdata/ROOF_<host>.json probe archive when present, the analytic
// Clovertown peak otherwise): the §II-B predicted bytes per SpMV for
// CSR and for FORMAT, the ceiling GB/s the prediction divides by, the
// predicted floor seconds per iteration at that ceiling, and the
// format's predicted traffic (and therefore time) ratio vs CSR.
//
// With -profile FORMAT (e.g. -profile csr-du) each matrix additionally
// gets the named format's full structural profile: the per-stream byte
// split of the traffic model, the CSR-DU ctl-unit histograms and the
// CSR-VI dictionary statistics where applicable.
//
// With -features the human-readable report is replaced by the
// autotuner's structural feature vector, one JSON object per input file
// on stdout ({"path": ..., "features": {...}}): row distribution and
// skew, column-delta widths, unique values and float32 losslessness,
// bandwidth before/after RCM, symmetry, diagonal and block structure,
// and the simulated CSR-DU control-stream sizes — the exact inputs the
// format autotuner ranks candidates from.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"spmv"
	"spmv/internal/autotune"
	"spmv/internal/bench"
	"spmv/internal/csrdu"
	"spmv/internal/matgen"
	"spmv/internal/memsim"
	"spmv/internal/obs"
	"spmv/internal/prof"
	"spmv/internal/roofline"
)

func main() {
	verify := flag.Bool("verify", false, "structurally verify every format built from the matrix; any failure exits non-zero")
	profileFmt := flag.String("profile", "", "print the named format's structural profile (e.g. csr-du)")
	features := flag.Bool("features", false, "emit the autotuner's structural feature vector as JSON instead of the report")
	roofFmt := flag.String("roofline", "", "predict the named format's bandwidth floor against the host roofline (e.g. -roofline csr-du)")
	roofDir := flag.String("roofdir", "benchdata", "directory holding the per-host ROOF_<host>.json probe archives")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mtxinfo [-verify] [-profile FORMAT] [-features] [-roofline FORMAT] [-roofdir DIR] file.mtx [file2.mtx ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var roofModel *roofline.Model
	if *roofFmt != "" {
		m, err := roofline.Load(*roofDir)
		if err != nil {
			// No probe archive for this host: the analytic Clovertown peak
			// keeps the prediction well-defined, and the output names the
			// source so nobody mistakes it for a measurement.
			m = roofline.Analytic(memsim.Clovertown())
		}
		roofModel = m
	}
	status := 0
	for _, path := range flag.Args() {
		var err error
		if *features {
			err = reportFeatures(path)
		} else {
			err = report(path, *verify, *profileFmt, *roofFmt, roofModel)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtxinfo: %s: %v\n", path, err)
			status = 1
		}
	}
	os.Exit(status)
}

// reportRoofline prints the bandwidth-floor prediction for one format:
// at the roofline ceiling, an SpMV can never run faster than predicted
// bytes divided by ceiling bandwidth — the floor a perfectly
// memory-bound kernel would hit. The CSR baseline makes the comparison
// the paper's: compression wins exactly its traffic ratio.
func reportRoofline(c *spmv.COO, formatName string, m *roofline.Model) error {
	f, err := spmv.BuildFormat(formatName, c)
	if err != nil {
		return fmt.Errorf("roofline: %w", err)
	}
	base, err := spmv.NewCSR(c)
	if err != nil {
		return fmt.Errorf("roofline: %w", err)
	}
	th := m.MaxThreads()
	ceil := m.CeilingGBps(th)
	if ceil <= 0 {
		return fmt.Errorf("roofline: model has no bandwidth ceiling")
	}
	src := m.Source
	if m.Host != "" {
		src += " @" + m.Host
	}
	thLabel := "any threads"
	if th > 0 {
		thLabel = fmt.Sprintf("t%d", th)
	}
	fmt.Printf("  roofline     model %s, ceiling %.3f GB/s (%s)\n", src, ceil, thLabel)
	fb := obs.BytesPerSpMV(f)
	bb := obs.BytesPerSpMV(base)
	floor := func(bytes int64) float64 { return float64(bytes) / (ceil * 1e9) }
	fmt.Printf("    %-10s %12d bytes/SpMV   floor %.3e s/iter\n", base.Name(), bb, floor(bb))
	fmt.Printf("    %-10s %12d bytes/SpMV   floor %.3e s/iter\n", f.Name(), fb, floor(fb))
	// At CSR's floor time the compressed format streams only its own
	// bytes: its %-of-roofline is the traffic ratio. Anything above it
	// means the run beat CSR's floor; anything below means overhead ate
	// the compression win.
	fmt.Printf("    predicted %%roof at CSR-floor speed: %.1f%% (traffic ratio vs CSR)\n",
		100*float64(fb)/float64(bb))
	return nil
}

// reportFeatures emits one JSON document with the matrix's autotuner
// feature vector.
func reportFeatures(path string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	c, err := spmv.ReadMatrixMarket(f)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Path     string            `json:"path"`
		Features autotune.Features `json:"features"`
	}{Path: path, Features: autotune.Extract(c)})
}

func report(path string, verify bool, profileFmt, roofFmt string, roofModel *roofline.Model) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	c, err := spmv.ReadMatrixMarket(f)
	if err != nil {
		return err
	}
	ws := spmv.WorkingSet(c)
	ttu := matgen.TTU(c)
	fmt.Printf("%s\n", path)
	fmt.Printf("  shape        %d x %d, %d non-zeros\n", c.Rows(), c.Cols(), c.Len())
	fmt.Printf("  working set  %.2f MB  (class M_%s; paper admits ws >= 3MB)\n",
		float64(ws)/(1<<20), bench.Classify(ws))
	fmt.Printf("  ttu          %.2f  (CSR-VI applicable: %v, threshold > 5)\n", ttu, ttu > 5)

	a := spmv.Analyze(c)
	fmt.Printf("  structure    bandwidth %d, %d diagonals, symmetric %v, row nnz avg %.1f max %d\n",
		a.Bandwidth, a.Diagonals, a.Symmetric, a.AvgRowNNZ, a.MaxRowNNZ)
	fmt.Printf("  col deltas   u8 %.0f%%  u16 %.0f%%  u32 %.0f%%  (delta==1: %.0f%%)\n",
		100*a.DeltaFrac[0], 100*a.DeltaFrac[1], 100*a.DeltaFrac[2], 100*a.DeltaEq1)
	vals := make([]float64, c.Len())
	for k := range vals {
		_, _, vals[k] = c.At(k)
	}
	fmt.Printf("  fpc ratio    %.2f  (lossless value-stream compressibility)\n",
		spmv.ValueCompressibility(vals))

	base, err := spmv.NewCSR(c)
	if err != nil {
		return err
	}
	hdr := ""
	if verify {
		hdr = "   verify"
	}
	fmt.Printf("  %-10s %12s %9s%s\n", "format", "bytes", "vs CSR", hdr)
	var badFormats []string
	for _, name := range spmv.FormatNames() {
		f, err := spmv.BuildFormat(name, c)
		if err != nil {
			fmt.Printf("  %-10s %12s (%v)\n", name, "-", err)
			continue
		}
		check := ""
		if verify {
			if verr := spmv.Verify(f); verr != nil {
				check = fmt.Sprintf("   FAIL: %v", verr)
				badFormats = append(badFormats, name)
			} else {
				check = "   ok"
			}
		}
		fmt.Printf("  %-10s %12d %8.1f%%%s\n", name, f.SizeBytes(),
			100*float64(f.SizeBytes())/float64(base.SizeBytes()), check)
	}
	if len(badFormats) > 0 {
		return fmt.Errorf("verification failed for %v", badFormats)
	}

	du, err := spmv.NewCSRDU(c)
	if err == nil {
		st := du.Stats()
		fmt.Printf("  csr-du units %d (avg size %.1f): u8=%d u16=%d u32=%d u64=%d\n",
			st.Units, st.AvgSize,
			st.PerClass[csrdu.ClassU8], st.PerClass[csrdu.ClassU16],
			st.PerClass[csrdu.ClassU32], st.PerClass[csrdu.ClassU64])
	}
	fmt.Println("  recommended formats (predicted size vs CSR):")
	for i, r := range a.Recommend() {
		if i == 4 {
			break
		}
		fmt.Printf("    %d. %-9s %5.1f%%  %s\n", i+1, r.Format, 100*r.Ratio, r.Reason)
	}
	if roofFmt != "" {
		if err := reportRoofline(c, roofFmt, roofModel); err != nil {
			return err
		}
	}
	if profileFmt != "" {
		pf, err := spmv.BuildFormat(profileFmt, c)
		if err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		fmt.Println()
		if err := prof.New(pf).Fprint(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
