// Command mtxinfo analyzes Matrix Market files through the lens of the
// paper: working-set size and class (M_S/M_L), total-to-unique values
// ratio and CSR-VI applicability, per-format sizes and compression
// ratios, and the CSR-DU unit mix.
//
// Usage:
//
//	mtxinfo [-verify] [-profile FORMAT] [-features] file.mtx [file2.mtx ...]
//
// With -profile FORMAT (e.g. -profile csr-du) each matrix additionally
// gets the named format's full structural profile: the per-stream byte
// split of the traffic model, the CSR-DU ctl-unit histograms and the
// CSR-VI dictionary statistics where applicable.
//
// With -features the human-readable report is replaced by the
// autotuner's structural feature vector, one JSON object per input file
// on stdout ({"path": ..., "features": {...}}): row distribution and
// skew, column-delta widths, unique values and float32 losslessness,
// bandwidth before/after RCM, symmetry, diagonal and block structure,
// and the simulated CSR-DU control-stream sizes — the exact inputs the
// format autotuner ranks candidates from.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"spmv"
	"spmv/internal/autotune"
	"spmv/internal/bench"
	"spmv/internal/csrdu"
	"spmv/internal/matgen"
	"spmv/internal/prof"
)

func main() {
	verify := flag.Bool("verify", false, "structurally verify every format built from the matrix; any failure exits non-zero")
	profileFmt := flag.String("profile", "", "print the named format's structural profile (e.g. csr-du)")
	features := flag.Bool("features", false, "emit the autotuner's structural feature vector as JSON instead of the report")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mtxinfo [-verify] [-profile FORMAT] [-features] file.mtx [file2.mtx ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	status := 0
	for _, path := range flag.Args() {
		var err error
		if *features {
			err = reportFeatures(path)
		} else {
			err = report(path, *verify, *profileFmt)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtxinfo: %s: %v\n", path, err)
			status = 1
		}
	}
	os.Exit(status)
}

// reportFeatures emits one JSON document with the matrix's autotuner
// feature vector.
func reportFeatures(path string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	c, err := spmv.ReadMatrixMarket(f)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Path     string            `json:"path"`
		Features autotune.Features `json:"features"`
	}{Path: path, Features: autotune.Extract(c)})
}

func report(path string, verify bool, profileFmt string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	c, err := spmv.ReadMatrixMarket(f)
	if err != nil {
		return err
	}
	ws := spmv.WorkingSet(c)
	ttu := matgen.TTU(c)
	fmt.Printf("%s\n", path)
	fmt.Printf("  shape        %d x %d, %d non-zeros\n", c.Rows(), c.Cols(), c.Len())
	fmt.Printf("  working set  %.2f MB  (class M_%s; paper admits ws >= 3MB)\n",
		float64(ws)/(1<<20), bench.Classify(ws))
	fmt.Printf("  ttu          %.2f  (CSR-VI applicable: %v, threshold > 5)\n", ttu, ttu > 5)

	a := spmv.Analyze(c)
	fmt.Printf("  structure    bandwidth %d, %d diagonals, symmetric %v, row nnz avg %.1f max %d\n",
		a.Bandwidth, a.Diagonals, a.Symmetric, a.AvgRowNNZ, a.MaxRowNNZ)
	fmt.Printf("  col deltas   u8 %.0f%%  u16 %.0f%%  u32 %.0f%%  (delta==1: %.0f%%)\n",
		100*a.DeltaFrac[0], 100*a.DeltaFrac[1], 100*a.DeltaFrac[2], 100*a.DeltaEq1)
	vals := make([]float64, c.Len())
	for k := range vals {
		_, _, vals[k] = c.At(k)
	}
	fmt.Printf("  fpc ratio    %.2f  (lossless value-stream compressibility)\n",
		spmv.ValueCompressibility(vals))

	base, err := spmv.NewCSR(c)
	if err != nil {
		return err
	}
	hdr := ""
	if verify {
		hdr = "   verify"
	}
	fmt.Printf("  %-10s %12s %9s%s\n", "format", "bytes", "vs CSR", hdr)
	var badFormats []string
	for _, name := range spmv.FormatNames() {
		f, err := spmv.BuildFormat(name, c)
		if err != nil {
			fmt.Printf("  %-10s %12s (%v)\n", name, "-", err)
			continue
		}
		check := ""
		if verify {
			if verr := spmv.Verify(f); verr != nil {
				check = fmt.Sprintf("   FAIL: %v", verr)
				badFormats = append(badFormats, name)
			} else {
				check = "   ok"
			}
		}
		fmt.Printf("  %-10s %12d %8.1f%%%s\n", name, f.SizeBytes(),
			100*float64(f.SizeBytes())/float64(base.SizeBytes()), check)
	}
	if len(badFormats) > 0 {
		return fmt.Errorf("verification failed for %v", badFormats)
	}

	du, err := spmv.NewCSRDU(c)
	if err == nil {
		st := du.Stats()
		fmt.Printf("  csr-du units %d (avg size %.1f): u8=%d u16=%d u32=%d u64=%d\n",
			st.Units, st.AvgSize,
			st.PerClass[csrdu.ClassU8], st.PerClass[csrdu.ClassU16],
			st.PerClass[csrdu.ClassU32], st.PerClass[csrdu.ClassU64])
	}
	fmt.Println("  recommended formats (predicted size vs CSR):")
	for i, r := range a.Recommend() {
		if i == 4 {
			break
		}
		fmt.Printf("    %d. %-9s %5.1f%%  %s\n", i+1, r.Format, 100*r.Ratio, r.Reason)
	}
	if profileFmt != "" {
		pf, err := spmv.BuildFormat(profileFmt, c)
		if err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		fmt.Println()
		if err := prof.New(pf).Fprint(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
